/**
 * @file
 * Sweep-as-a-service: a persistent daemon that turns the batch
 * simulator into a shared, deduplicating result service.
 *
 * `shelfsim_cli --serve <unix-socket>` listens for newline-delimited
 * JSON requests from many concurrent clients. Each "run" request
 * carries a batch of sweep-job specs (the same documents the
 * supervisor journals and `--worker` replays). Every job is keyed
 * by its canonical spec (validate::canonicalJobKey — field order,
 * whitespace, number formatting, and defaulted fields do not change
 * identity) and answered from a content-addressed ResultCache:
 *
 *  - cache hit: the 17-digit round-tripped SystemResult JSON is
 *    returned instantly, byte-identical to the original run;
 *  - in-flight duplicate: the request coalesces onto the worker
 *    already computing that key (one simulation, many waiters);
 *  - miss: the job is queued to an executor pool that pushes it
 *    through SweepSupervisor::runOne(), so isolation, watchdogs,
 *    retries, and quarantine all apply per job — a crashing
 *    client-supplied config quarantines, it does not kill the
 *    service.
 *
 * Replies stream one line per job as results land, then a summary
 * line, so clients see per-job progress. Malformed, truncated, or
 * oversized frames get a clean {"error": ...} reply (never a
 * crash); requests are parsed with the strict depth-capped JSON
 * parser and a hard frame-size cap.
 *
 * Wire protocol (one JSON document per line, both directions):
 *   -> {"cmd":"run","id":TAG,"jobs":[<spec>,...]}
 *   <- {"job":K,"id":TAG,"source":"cache"|"computed"|"coalesced",
 *       "ok":true,"result":"<escaped SystemResult JSON>"}
 *   <- {"job":K,"id":TAG,"ok":false,"error":MSG[,"repro":LINE]}
 *   <- {"done":true,"id":TAG,"jobs":N,"hits":H,"misses":M,
 *       "coalesced":C}
 *   -> {"cmd":"stats"}        <- {"stats":{"serve.cache_hit":...}}
 *   -> {"cmd":"ping"}         <- {"ok":true}
 *   -> {"cmd":"shutdown"}     <- {"ok":true}, then the server stops
 *   <- {"error":MSG}          (malformed request; connection stays
 *                              usable unless the frame overflowed)
 */

#ifndef SHELFSIM_SIM_SERVE_HH
#define SHELFSIM_SIM_SERVE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/net.hh"
#include "sim/result_cache.hh"
#include "sim/supervisor.hh"
#include "validate/config_json.hh"

namespace shelf
{

/** Hard cap on one newline-delimited request frame. */
constexpr size_t kMaxServeFrameBytes = 8u << 20;

/** Jobs accepted in a single "run" request. */
constexpr size_t kMaxServeBatchJobs = 4096;

/** One parsed request. */
struct ServeRequest
{
    enum class Cmd { Run, Stats, Ping, Shutdown };

    Cmd cmd = Cmd::Ping;
    std::string id; ///< client batch tag, echoed in replies
    std::vector<validate::SweepJobSpec> jobs;
    /** Canonical cache key per job (parallel to jobs). */
    std::vector<std::string> keys;
};

/**
 * Parse and validate one request frame. Enforces the frame-size
 * cap, strict JSON (depth-capped parseJson dialect), the request
 * schema, per-job spec validity (CoreParams::validateError), and —
 * unless @p allowFaults — rejects self-faulting specs, which exist
 * for supervisor failure testing and must not be remotely
 * triggerable. Returns false with a clean message in @p err; never
 * aborts, whatever the input (the fuzzer's --serve-frame mode leans
 * on this). Job keys come back canonicalized, so a caller's field
 * order or formatting never leaks into cache identity.
 */
bool parseServeRequest(const std::string &frame, ServeRequest &out,
                       std::string &err, bool allowFaults = false);

struct ServeOptions
{
    /** Filesystem path of the unix listening socket. */
    std::string socketPath;

    /** On-disk cache tier directory ("" = in-memory only). */
    std::string cacheDir;

    /** In-memory cache tier bound (entries). */
    size_t cacheEntries = 4096;

    /** Executor threads computing cache misses (0 = defaultJobs()). */
    unsigned executors = 0;

    /** Per-job execution policy (isolation, watchdog, retries). The
     * journal/resume fields are ignored — the cache is the service's
     * persistence. */
    SupervisorOptions supervisor;

    /** Accept self-faulting specs (tests only). */
    bool allowFaults = false;

    /** Test hook: initial per-job execution delay (see
     * SweepServer::setJobDelaySeconds). */
    double jobDelaySeconds = 0;
};

/** Service counters, exported verbatim by the "stats" command. */
struct ServeStats
{
    uint64_t cacheHit = 0;       ///< jobs answered from the cache
    uint64_t cacheMiss = 0;      ///< jobs that had to be computed
    uint64_t cacheCoalesced = 0; ///< jobs merged onto in-flight work
    uint64_t jobsExecuted = 0;   ///< simulations actually run
    uint64_t batches = 0;        ///< "run" requests served
    uint64_t parseErrors = 0;    ///< malformed frames answered
    uint64_t clientsServed = 0;  ///< connections accepted
    uint64_t clientsActive = 0;  ///< currently connected
    uint64_t inFlight = 0;       ///< keys being computed right now
    ResultCache::Stats cache;    ///< backing-cache counters
};

class SweepServer
{
  public:
    explicit SweepServer(ServeOptions opt);
    ~SweepServer();

    /** Bind the socket and launch acceptor + executor threads. */
    bool start(std::string *err = nullptr);

    /** Block until a client sends "shutdown" (or stop() is called
     * from another thread). */
    void waitForShutdownRequest();

    /**
     * Stop accepting, finish in-flight jobs, fail queued-but-
     * unstarted jobs with a clean error, disconnect clients, join
     * every thread, and remove the socket. Idempotent.
     */
    void stop();

    ServeStats stats() const;
    /** The "stats" command's reply document. */
    std::string statsJson() const;
    uint64_t jobsExecuted() const;
    ResultCache &cache() { return cache_; }
    const std::string &socketPath() const
    {
        return opt.socketPath;
    }

    /** Test hook: sleep this long inside every executed job, so
     * coalescing windows are wide enough to test against. */
    void setJobDelaySeconds(double s);

  private:
    /** Result of one job as seen by waiting clients. */
    struct JobReply
    {
        bool ok = false;
        std::string resultJson; ///< full-precision SystemResult
        std::string error;
        std::string repro;
    };

    /** One key being computed; waiters share the future. */
    struct Task
    {
        std::string key;
        validate::SweepJobSpec spec;
        std::promise<JobReply> promise;
        std::shared_future<JobReply> future;
    };

    /** How a job in a batch got its answer. */
    struct Slot
    {
        enum class Source { Hit, Miss, Coalesced } source;
        std::string immediate; ///< filled for Source::Hit
        std::shared_future<JobReply> future;
    };

    void acceptLoop();
    void executorLoop();
    void serveClient(int fd);
    void handleRun(int fd, const ServeRequest &req);
    std::vector<Slot> classifyBatch(const ServeRequest &req);

    ServeOptions opt;
    SweepSupervisor supervisor;
    ResultCache cache_;

    int listenFd = -1;
    std::thread acceptor;
    std::vector<std::thread> executors;

    /** Protects queue, inflight, and counters. */
    mutable std::mutex m;
    std::condition_variable taskCv;
    std::deque<std::shared_ptr<Task>> queue;
    std::unordered_map<std::string, std::shared_ptr<Task>> inflight;
    ServeStats counters;

    /** Protects clientFds and clientThreads. */
    std::mutex clientsM;
    std::list<int> clientFds;
    std::vector<std::thread> clientThreads;

    std::atomic<bool> stopping{false};
    bool stopped = false; ///< stop() already ran (main thread only)

    std::mutex shutdownM;
    std::condition_variable shutdownCv;
    bool shutdownRequested = false;

    std::atomic<double> jobDelaySeconds{0};
};

/**
 * Blocking `--serve` entry point: start the server, report the
 * socket on stderr, run until a client requests shutdown, then
 * print the final counters. Returns a process exit code.
 */
int runServeMain(const ServeOptions &opt);

/**
 * Minimal client for the wire protocol (used by `--connect`, the
 * service tests, and the smoke script).
 */
class ServeClient
{
  public:
    struct JobReply
    {
        bool ok = false;
        std::string source;     ///< "cache" | "computed" | "coalesced"
        std::string resultJson; ///< exact bytes the server cached
        std::string error;
    };

    ServeClient() = default;
    ~ServeClient();

    bool connect(const std::string &socketPath, std::string *err);

    /**
     * connect() with bounded retry-with-backoff on the transient
     * failures a restarting or not-yet-bound daemon produces (see
     * connectUnixRetry): up to @p attempts tries with exponential
     * backoff from @p backoffSeconds.
     */
    bool connectRetry(const std::string &socketPath,
                      unsigned attempts, double backoffSeconds,
                      std::string *err);

    void disconnect();
    bool connected() const { return fd >= 0; }

    /**
     * Submit one batch and collect one reply per job (input order).
     * @p progress, when set, fires as each job's reply line arrives
     * (streamed, so a long batch shows motion). Returns false on
     * transport or protocol errors.
     */
    bool submit(const std::vector<validate::SweepJobSpec> &jobs,
                std::vector<JobReply> &replies, std::string *err,
                std::function<void(size_t, const JobReply &)>
                    progress = nullptr);

    /**
     * submit() that survives a server restart: on a transport
     * failure mid-batch (connection refused, reset, or closed
     * partway through the reply stream), disconnect, reconnect with
     * backoff, and resubmit the whole batch — up to @p attempts
     * tries in total. Resubmission is safe because the server is
     * idempotent per job: finished cells answer from the
     * content-addressed cache (or its disk tier, which survives the
     * restart), so a retried batch never recomputes what already
     * completed. Deterministic protocol rejections (bad spec) fail
     * immediately; only transport failures retry.
     */
    bool submitResilient(
        const std::string &socketPath,
        const std::vector<validate::SweepJobSpec> &jobs,
        std::vector<JobReply> &replies, unsigned attempts,
        double backoffSeconds, std::string *err,
        std::function<void(size_t, const JobReply &)> progress =
            nullptr);

    /** Fetch the server's stats object (one JSON line). */
    bool stats(std::string &statsJson, std::string *err);

    bool ping(std::string *err);

    /** Ask the server to shut down. */
    bool requestShutdown(std::string *err);

  private:
    bool sendLine(const std::string &line, std::string *err);
    bool recvLine(std::string &line, std::string *err);

    int fd = -1;
    std::unique_ptr<LineReader> reader;
};

} // namespace shelf

#endif // SHELFSIM_SIM_SERVE_HH
