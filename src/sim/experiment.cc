#include "sim/experiment.hh"

#include <cstdlib>

#include "base/logging.hh"
#include "metrics/throughput.hh"
#include "workload/spec2006.hh"

namespace shelf
{

SimControls
SimControls::fromEnv()
{
    SimControls ctl;
    if (const char *s = std::getenv("SHELFSIM_SCALE")) {
        double scale = std::atof(s);
        fatal_if(scale <= 0.0, "bad SHELFSIM_SCALE '%s'", s);
        ctl.warmupCycles =
            static_cast<Cycle>(ctl.warmupCycles * scale);
        ctl.measureCycles =
            static_cast<Cycle>(ctl.measureCycles * scale);
    }
    return ctl;
}

std::vector<WorkloadMix>
standardMixes(unsigned threads, uint64_t seed)
{
    size_t num_benchmarks = spec2006Profiles().size();
    // 28 mixes, like the paper, regardless of thread count (28*T is
    // divisible by 28 benchmarks for any T).
    return balancedRandomMixes(num_benchmarks, threads,
                               num_benchmarks, seed);
}

SystemResult
runMix(const CoreParams &core, const WorkloadMix &mix,
       const SimControls &ctl)
{
    SystemConfig cfg;
    cfg.core = core;
    cfg.seed = ctl.seed;
    cfg.warmupCycles = ctl.warmupCycles;
    cfg.measureCycles = ctl.measureCycles;
    const auto &profiles = spec2006Profiles();
    for (size_t b : mix.benchmarks)
        cfg.benchmarks.push_back(profiles[b].name);
    fatal_if(cfg.benchmarks.size() != core.threads,
             "mix size %zu != %u threads", cfg.benchmarks.size(),
             core.threads);
    System sys(cfg);
    return sys.run();
}

SystemResult
runSingle(const CoreParams &core, const std::string &benchmark,
          const SimControls &ctl)
{
    CoreParams single = core;
    single.threads = 1;
    SystemConfig cfg;
    cfg.core = single;
    cfg.seed = ctl.seed;
    cfg.warmupCycles = ctl.warmupCycles;
    cfg.measureCycles = ctl.measureCycles;
    cfg.benchmarks = { benchmark };
    System sys(cfg);
    return sys.run();
}

STReference::STReference(const SimControls &ctl_)
    : ctl(ctl_)
{}

double
STReference::ipc(size_t bench)
{
    auto it = cache.find(bench);
    if (it != cache.end())
        return it->second;
    const auto &profiles = spec2006Profiles();
    panic_if(bench >= profiles.size(), "bad benchmark index %zu",
             bench);
    SystemResult res =
        runSingle(baseCore64(1), profiles[bench].name, ctl);
    double ipc = res.threads[0].ipc;
    panic_if(ipc <= 0.0, "zero single-thread IPC for %s",
             profiles[bench].name.c_str());
    cache[bench] = ipc;
    return ipc;
}

double
stpOf(const SystemResult &res, const WorkloadMix &mix,
      STReference &ref)
{
    std::vector<double> ipc_mt = res.ipcVector();
    std::vector<double> ipc_st;
    for (size_t b : mix.benchmarks)
        ipc_st.push_back(ref.ipc(b));
    return stp(ipc_mt, ipc_st);
}

double
anttOf(const SystemResult &res, const WorkloadMix &mix,
       STReference &ref)
{
    std::vector<double> ipc_mt = res.ipcVector();
    std::vector<double> ipc_st;
    for (size_t b : mix.benchmarks)
        ipc_st.push_back(ref.ipc(b));
    return antt(ipc_mt, ipc_st);
}

} // namespace shelf
