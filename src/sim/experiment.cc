#include "sim/experiment.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <list>

#include "base/json.hh"
#include "base/logging.hh"
#include "metrics/throughput.hh"
#include "sim/parallel.hh"
#include "sim/result_cache.hh"
#include "sim/supervisor.hh"
#include "validate/config_json.hh"
#include "workload/spec2006.hh"

namespace shelf
{

namespace
{

/** Process-wide backing store for reference runs (may be null). */
std::atomic<ResultCache *> refResultCache{nullptr};

} // namespace

void
setReferenceResultCache(ResultCache *cache)
{
    refResultCache.store(cache);
}

SimControls
SimControls::fromEnv()
{
    SimControls ctl;
    if (const char *s = std::getenv("SHELFSIM_SCALE")) {
        // Strict parse: atof would silently turn "nan", "0.5x", or
        // garbage into NaN/partial values and yield zero-cycle
        // "measurements" downstream. tryParseDouble already rejects
        // NaN/infinity and trailing text.
        double scale;
        fatal_if(!tryParseDouble(s, scale) || scale <= 0.0,
                 "bad SHELFSIM_SCALE '%s' (need a finite value "
                 "> 0)", s);
        ctl.warmupCycles =
            static_cast<Cycle>(ctl.warmupCycles * scale);
        ctl.measureCycles =
            static_cast<Cycle>(ctl.measureCycles * scale);
        if (ctl.measureCycles < 1) {
            warn("SHELFSIM_SCALE %s leaves no measured cycles; "
                 "clamping to 1", s);
            ctl.measureCycles = 1;
        }
    }
    return ctl;
}

std::vector<WorkloadMix>
standardMixes(unsigned threads, uint64_t seed)
{
    size_t num_benchmarks = spec2006Profiles().size();
    // 28 mixes, like the paper, regardless of thread count (28*T is
    // divisible by 28 benchmarks for any T).
    return balancedRandomMixes(num_benchmarks, threads,
                               num_benchmarks, seed);
}

SystemResult
runMix(const CoreParams &core, const WorkloadMix &mix,
       const SimControls &ctl)
{
    SystemConfig cfg;
    cfg.core = core;
    cfg.seed = ctl.seed;
    cfg.warmupCycles = ctl.warmupCycles;
    cfg.measureCycles = ctl.measureCycles;
    cfg.numCores = ctl.numCores;
    cfg.allocation = ctl.allocation;
    const auto &profiles = spec2006Profiles();
    for (size_t b : mix.benchmarks)
        cfg.benchmarks.push_back(profiles[b].name);
    if (cfg.numCores == 1) {
        fatal_if(cfg.benchmarks.size() != core.threads,
                 "mix size %zu != %u threads", cfg.benchmarks.size(),
                 core.threads);
    } else {
        fatal_if(cfg.benchmarks.size() >
                 static_cast<size_t>(cfg.numCores) * core.threads,
                 "mix size %zu > %u cores x %u threads",
                 cfg.benchmarks.size(), cfg.numCores, core.threads);
    }
    System sys(cfg);
    if (ctl.wedgeAtCycle) {
        for (unsigned c = 0; c < sys.numCores(); ++c)
            if (sys.hasCore(c))
                sys.core(c).wedgeRetirementAt(ctl.wedgeAtCycle);
    }
    return sys.run();
}

SystemResult
runSingle(const CoreParams &core, const std::string &benchmark,
          const SimControls &ctl)
{
    CoreParams single = core;
    single.threads = 1;
    SystemConfig cfg;
    cfg.core = single;
    cfg.seed = ctl.seed;
    cfg.warmupCycles = ctl.warmupCycles;
    cfg.measureCycles = ctl.measureCycles;
    cfg.benchmarks = { benchmark };
    System sys(cfg);
    return sys.run();
}

STReference::STReference(const SimControls &ctl_)
    : ctl(ctl_)
{}

double
STReference::compute(size_t bench) const
{
    const auto &profiles = spec2006Profiles();
    panic_if(bench >= profiles.size(), "bad benchmark index %zu",
             bench);
    // A reference run is itself a canonical sweep job (1-thread
    // baseline core, one-benchmark mix), so it is content-addressed
    // in the same cache tier as sweep cells when one is registered.
    validate::SweepJobSpec spec;
    spec.core = baseCore64(1);
    spec.mixBenchmarks = { bench };
    spec.warmupCycles = ctl.warmupCycles;
    spec.measureCycles = ctl.measureCycles;
    spec.seed = ctl.seed;
    ResultCache *cache = refResultCache.load();
    SystemResult res;
    std::string cached;
    if (cache &&
        cache->lookup(validate::canonicalJobKey(spec), cached)) {
        res = SystemResult::fromJson(cached);
    } else {
        res = runSingle(baseCore64(1), profiles[bench].name, ctl);
        if (cache) {
            cache->insert(validate::canonicalJobKey(spec),
                          res.toJson(JsonWriter::kFullPrecision));
        }
    }
    double ipc = res.threads[0].ipc;
    panic_if(ipc <= 0.0, "zero single-thread IPC for %s",
             profiles[bench].name.c_str());
    return ipc;
}

double
STReference::computeTrace(const std::string &path,
                          const std::string &hash) const
{
    // Like compute(): the reference run is itself a canonical sweep
    // job (1-thread baseline core replaying this one trace), so it
    // shares the content-addressed cache tier with sweep cells.
    validate::SweepJobSpec spec;
    spec.core = baseCore64(1);
    spec.tracePaths = { path };
    spec.traceHashes = { hash };
    spec.warmupCycles = ctl.warmupCycles;
    spec.measureCycles = ctl.measureCycles;
    spec.seed = ctl.seed;
    ResultCache *cache = refResultCache.load();
    SystemResult res;
    std::string cached;
    if (cache &&
        cache->lookup(validate::canonicalJobKey(spec), cached)) {
        res = SystemResult::fromJson(cached);
    } else {
        std::string err;
        fatal_if(!tryRunSweepJob(spec, res, err),
                 "single-thread reference run for trace '%s' "
                 "failed: %s", path.c_str(), err.c_str());
        if (cache) {
            cache->insert(validate::canonicalJobKey(spec),
                          res.toJson(JsonWriter::kFullPrecision));
        }
    }
    double ipc = res.threads[0].ipc;
    panic_if(ipc <= 0.0, "zero single-thread IPC for trace %s",
             path.c_str());
    return ipc;
}

double
STReference::ipcForTrace(const std::string &path,
                         const std::string &hash)
{
    fatal_if(hash.empty(),
             "trace reference for '%s' needs a content hash",
             path.c_str());
    std::unique_lock<std::mutex> lk(m);
    for (;;) {
        auto it = traceCache.find(hash);
        if (it != traceCache.end())
            return it->second;
        if (traceInFlight.count(hash)) {
            ready.wait(lk);
            continue;
        }
        traceInFlight.insert(hash);
        lk.unlock();
        double value = computeTrace(path, hash);
        lk.lock();
        traceCache[hash] = value;
        traceInFlight.erase(hash);
        ready.notify_all();
        return value;
    }
}

double
STReference::ipc(size_t bench)
{
    std::unique_lock<std::mutex> lk(m);
    for (;;) {
        auto it = cache.find(bench);
        if (it != cache.end())
            return it->second;
        if (inFlight.count(bench)) {
            // Another thread is simulating this benchmark: wait for
            // its result instead of duplicating the run.
            ready.wait(lk);
            continue;
        }
        inFlight.insert(bench);
        lk.unlock();
        double value = compute(bench);
        lk.lock();
        cache[bench] = value;
        inFlight.erase(bench);
        ready.notify_all();
        return value;
    }
}

void
STReference::precomputeBenches(std::vector<size_t> benches,
                               unsigned jobs)
{
    std::sort(benches.begin(), benches.end());
    benches.erase(std::unique(benches.begin(), benches.end()),
                  benches.end());
    {
        std::lock_guard<std::mutex> lk(m);
        benches.erase(
            std::remove_if(benches.begin(), benches.end(),
                           [&](size_t b) { return cache.count(b); }),
            benches.end());
    }
    runJobs(benches.size(),
            [&](size_t i) { ipc(benches[i]); }, jobs);
}

void
STReference::precompute(const std::vector<WorkloadMix> &mixes,
                        unsigned jobs)
{
    std::vector<size_t> benches;
    for (const auto &mix : mixes)
        for (size_t b : mix.benchmarks)
            benches.push_back(b);
    precomputeBenches(std::move(benches), jobs);
}

void
STReference::precomputeAll(unsigned jobs)
{
    std::vector<size_t> benches(spec2006Profiles().size());
    for (size_t b = 0; b < benches.size(); ++b)
        benches[b] = b;
    precomputeBenches(std::move(benches), jobs);
}

STReference &
sharedReference(const SimControls &ctl)
{
    struct Entry
    {
        SimControls ctl;
        STReference ref;
        explicit Entry(const SimControls &c) : ctl(c), ref(c) {}
    };
    static std::mutex m;
    static std::list<Entry> entries;

    std::lock_guard<std::mutex> lk(m);
    for (auto &e : entries) {
        if (e.ctl.warmupCycles == ctl.warmupCycles &&
            e.ctl.measureCycles == ctl.measureCycles &&
            e.ctl.seed == ctl.seed) {
            return e.ref;
        }
    }
    entries.emplace_back(ctl);
    return entries.back().ref;
}

double
stpOf(const SystemResult &res, const WorkloadMix &mix,
      STReference &ref)
{
    std::vector<double> ipc_mt = res.ipcVector();
    std::vector<double> ipc_st;
    for (size_t b : mix.benchmarks)
        ipc_st.push_back(ref.ipc(b));
    return stp(ipc_mt, ipc_st);
}

double
stpOfSpec(const SystemResult &res,
          const validate::SweepJobSpec &spec, STReference &ref)
{
    std::vector<double> ipc_mt = res.ipcVector();
    std::vector<double> ipc_st;
    if (spec.tracePaths.empty()) {
        for (size_t b : spec.mixBenchmarks)
            ipc_st.push_back(ref.ipc(b));
    } else {
        fatal_if(spec.traceHashes.size() != spec.tracePaths.size(),
                 "stpOfSpec: spec lacks trace content hashes");
        for (size_t t = 0; t < spec.tracePaths.size(); ++t)
            ipc_st.push_back(ref.ipcForTrace(spec.tracePaths[t],
                                             spec.traceHashes[t]));
    }
    return stp(ipc_mt, ipc_st);
}

double
anttOf(const SystemResult &res, const WorkloadMix &mix,
       STReference &ref)
{
    std::vector<double> ipc_mt = res.ipcVector();
    std::vector<double> ipc_st;
    for (size_t b : mix.benchmarks)
        ipc_st.push_back(ref.ipc(b));
    return antt(ipc_mt, ipc_st);
}

} // namespace shelf
