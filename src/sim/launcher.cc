#include "sim/launcher.hh"

#include <poll.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include "base/json.hh"
#include "base/net.hh"
#include "base/strutil.hh"

extern char **environ;

namespace shelf
{

const char *const kWorkerResultMarker = "SHELFSIM-RESULT ";
const char *const kWorkerDumpMarker = "SHELFSIM-DUMP ";

namespace
{

/** Bytes of worker stderr kept for failure reports. */
constexpr size_t kStderrTailBytes = 4096;

/** Hard cap on one newline-delimited serve reply frame. */
constexpr size_t kMaxReplyFrameBytes = 8u << 20;

double
elapsedSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Extract the path from the last line-anchored "SHELFSIM-DUMP "
 * marker in a worker's stderr tail (last wins: a retried panic may
 * announce several dumps, and the final one describes the terminal
 * state).
 */
std::string
findDumpFile(const std::string &stderrTail)
{
    size_t pos = std::string::npos;
    size_t from = 0;
    for (;;) {
        size_t hit = stderrTail.find(kWorkerDumpMarker, from);
        if (hit == std::string::npos)
            break;
        if (hit == 0 || stderrTail[hit - 1] == '\n')
            pos = hit;
        from = hit + 1;
    }
    if (pos == std::string::npos)
        return "";
    size_t start = pos + strlen(kWorkerDumpMarker);
    size_t end = stderrTail.find('\n', start);
    return stderrTail.substr(
        start,
        end == std::string::npos ? std::string::npos : end - start);
}

void
appendTail(std::string &tail, const char *data, size_t n)
{
    tail.append(data, n);
    if (tail.size() > kStderrTailBytes)
        tail.erase(0, tail.size() - kStderrTailBytes);
}

} // namespace

LocalSpawnLauncher::LocalSpawnLauncher(std::string workerBinary_,
                                       std::string dumpDir_)
    : workerBinary(std::move(workerBinary_)),
      dumpDir(std::move(dumpDir_))
{
}

/*
 * Spawn `<bin> --worker '<spec>'`, capture its stdout/stderr, and
 * enforce the wall-clock watchdog: past the deadline the child is
 * SIGKILLed and the attempt marked timed out. Only returns once the
 * child is reaped — no zombies, even on the kill path.
 */
LaunchResult
LocalSpawnLauncher::launch(const std::string &specJson,
                           double timeoutSeconds)
{
    LaunchResult at;

    // Per-spawn environment: SHELFSIM_DUMP_DIR tells the worker
    // where to write crash dumps. Built as a private envp rather
    // than via setenv() because launch() runs concurrently on pool
    // threads and setenv() is not thread-safe.
    std::string dumpVar;
    std::vector<char *> envp;
    for (char **e = environ; *e; ++e) {
        if (strncmp(*e, "SHELFSIM_DUMP_DIR=", 18) != 0)
            envp.push_back(*e);
    }
    if (!dumpDir.empty()) {
        dumpVar = "SHELFSIM_DUMP_DIR=" + dumpDir;
        envp.push_back(dumpVar.data());
    }
    envp.push_back(nullptr);

    int outPipe[2], errPipe[2];
    if (pipe(outPipe) != 0) {
        at.exitCode = 127;
        at.stderrTail = csprintf("pipe: %s", strerror(errno));
        return at;
    }
    if (pipe(errPipe) != 0) {
        at.exitCode = 127;
        at.stderrTail = csprintf("pipe: %s", strerror(errno));
        close(outPipe[0]);
        close(outPipe[1]);
        return at;
    }

    posix_spawn_file_actions_t fa;
    posix_spawn_file_actions_init(&fa);
    posix_spawn_file_actions_adddup2(&fa, outPipe[1], 1);
    posix_spawn_file_actions_adddup2(&fa, errPipe[1], 2);
    posix_spawn_file_actions_addclose(&fa, outPipe[0]);
    posix_spawn_file_actions_addclose(&fa, outPipe[1]);
    posix_spawn_file_actions_addclose(&fa, errPipe[0]);
    posix_spawn_file_actions_addclose(&fa, errPipe[1]);

    std::string arg0 = workerBinary, arg1 = "--worker",
                arg2 = specJson;
    char *argv[] = { arg0.data(), arg1.data(), arg2.data(),
                     nullptr };

    pid_t pid = -1;
    int rc = posix_spawn(&pid, workerBinary.c_str(), &fa, nullptr,
                         argv, envp.data());
    posix_spawn_file_actions_destroy(&fa);
    close(outPipe[1]);
    close(errPipe[1]);
    if (rc != 0) {
        close(outPipe[0]);
        close(errPipe[0]);
        at.exitCode = 127;
        at.stderrTail = csprintf("spawn '%s': %s",
                                 workerBinary.c_str(), strerror(rc));
        return at;
    }

    auto t0 = std::chrono::steady_clock::now();
    bool killed = false;
    std::string out;
    struct pollfd fds[2] = { { outPipe[0], POLLIN, 0 },
                             { errPipe[0], POLLIN, 0 } };
    int openFds = 2;
    while (openFds > 0) {
        int timeout_ms = -1;
        if (timeoutSeconds > 0 && !killed) {
            double left = timeoutSeconds - elapsedSince(t0);
            timeout_ms =
                left > 0 ? static_cast<int>(left * 1000) + 1 : 0;
        }
        int n = poll(fds, 2, timeout_ms);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0) {
            // Watchdog: the job overran its budget. Kill the worker
            // and keep draining the pipes until EOF so the process
            // can be reaped. SIGKILL also reaps SIGSTOPped workers —
            // a stopped child keeps its pipes open and produces no
            // output, so it arrives here through the same timeout.
            kill(pid, SIGKILL);
            killed = true;
            at.timedOut = true;
            continue;
        }
        for (auto &p : fds) {
            if (p.fd < 0 ||
                !(p.revents & (POLLIN | POLLHUP | POLLERR))) {
                continue;
            }
            char buf[4096];
            ssize_t got = read(p.fd, buf, sizeof(buf));
            if (got > 0) {
                if (p.fd == outPipe[0])
                    out.append(buf, static_cast<size_t>(got));
                else
                    appendTail(at.stderrTail, buf,
                               static_cast<size_t>(got));
            } else {
                close(p.fd);
                p.fd = -1;
                --openFds;
            }
        }
    }
    if (fds[0].fd >= 0)
        close(fds[0].fd);
    if (fds[1].fd >= 0)
        close(fds[1].fd);

    int status = 0;
    while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    if (WIFEXITED(status))
        at.exitCode = WEXITSTATUS(status);
    else if (WIFSIGNALED(status))
        at.termSignal = WTERMSIG(status);

    at.dumpFile = findDumpFile(at.stderrTail);

    if (at.timedOut || at.exitCode != 0 || at.termSignal != 0)
        return at;

    size_t pos = out.rfind(kWorkerResultMarker);
    if (pos == std::string::npos ||
        (pos > 0 && out[pos - 1] != '\n')) {
        at.stderrTail += "[worker printed no result payload]";
        at.exitCode = at.exitCode ? at.exitCode : 125;
        return at;
    }
    size_t start = pos + strlen(kWorkerResultMarker);
    size_t end = out.find('\n', start);
    std::string payload = out.substr(
        start, end == std::string::npos ? std::string::npos
                                        : end - start);
    JsonValue probe;
    if (!tryParseJson(payload, probe, nullptr)) {
        at.stderrTail += "[worker result payload truncated]";
        at.exitCode = 125;
        return at;
    }
    at.resultJson = std::move(payload);
    at.ok = true;
    return at;
}

RemoteServeLauncher::RemoteServeLauncher(std::string name,
                                         std::string socketPath,
                                         unsigned connectAttempts_,
                                         double connectBackoff_)
    : name_(std::move(name)), socketPath_(std::move(socketPath)),
      connectAttempts(connectAttempts_),
      connectBackoffSeconds(connectBackoff_)
{
}

RemoteServeLauncher::~RemoteServeLauncher()
{
    disconnect();
}

bool
RemoteServeLauncher::ensureConnected(std::string &err)
{
    if (fd >= 0)
        return true;
    fd = connectUnixRetry(socketPath_, connectAttempts,
                          connectBackoffSeconds, err);
    return fd >= 0;
}

void
RemoteServeLauncher::disconnect()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

LaunchResult
RemoteServeLauncher::launch(const std::string &specJson,
                            double timeoutSeconds)
{
    LaunchResult at;
    auto transportFail = [&](const std::string &what,
                             bool deadline) -> LaunchResult & {
        at = LaunchResult();
        at.transportFailure = true;
        at.timedOut = deadline;
        at.error = csprintf("node %s (%s): %s", name_.c_str(),
                            socketPath_.c_str(), what.c_str());
        // Framing may be lost mid-reply; the stream is unusable.
        disconnect();
        return at;
    };

    std::string err;
    if (!ensureConnected(err))
        return transportFail(err, false);
    // Always (re)set the deadline: 0 restores blocking reads, and a
    // deadline left over from a previous call must not leak in.
    if (!setRecvTimeout(fd, timeoutSeconds, err))
        return transportFail(err, false);

    if (!writeAll(fd, "{\"cmd\":\"run\",\"jobs\":[" + specJson +
                          "]}\n")) {
        return transportFail("write failed", false);
    }

    // Expect one per-job reply line, then the batch summary line.
    LineReader reader(fd, kMaxReplyFrameBytes);
    bool haveReply = false;
    for (;;) {
        std::string line;
        switch (reader.readLine(line)) {
          case LineReader::Status::Line:
            break;
          case LineReader::Status::Timeout:
            return transportFail("read deadline expired", true);
          case LineReader::Status::Eof:
            return transportFail("server closed the connection",
                                 false);
          case LineReader::Status::Oversized:
            return transportFail("oversized reply frame", false);
          case LineReader::Status::Error:
          default:
            return transportFail("read failed", false);
        }
        JsonValue doc;
        if (!tryParseJson(line, doc, nullptr) || !doc.isObject())
            return transportFail("unparseable reply", false);
        if (doc.find("done")) {
            if (!haveReply)
                return transportFail("summary before reply", false);
            return at;
        }
        const JsonValue *job = doc.find("job");
        if (!job) {
            // A top-level error without "job" rejects the whole
            // request (bad spec, oversized frame): that is the
            // job's failure, not the node's.
            const JsonValue *e = doc.find("error");
            at.error = e && e->isString()
                ? e->raw : std::string("request rejected");
            at.stderrTail = at.error;
            return at;
        }
        const JsonValue *ok = doc.find("ok");
        if (!ok || !ok->isBool())
            return transportFail("bad per-job reply", false);
        haveReply = true;
        if (ok->boolean) {
            const JsonValue *res = doc.find("result");
            if (!res || !res->isString())
                return transportFail("reply without result", false);
            at.ok = true;
            at.resultJson = res->raw;
        } else {
            if (const JsonValue *e = doc.find("error")) {
                at.error = e->raw;
                // The remote supervisor's quarantine detail is all
                // the forensics that cross the wire; surface it
                // where failure summaries look.
                at.stderrTail = e->raw;
            }
        }
    }
}

bool
RemoteServeLauncher::healthy(double timeoutSeconds, std::string &err)
{
    // One connect attempt, no retry: the health gate exists to be a
    // cheap, bounded liveness probe, and the caller (the fabric's
    // node loop) already owns the retry-with-backoff policy.
    // Stacking connectUnixRetry's attempts under it would multiply
    // the two schedules.
    if (fd < 0) {
        fd = connectUnix(socketPath_, err);
        if (fd < 0)
            return false;
    }
    if (!setRecvTimeout(fd, timeoutSeconds, err)) {
        disconnect();
        return false;
    }
    if (!writeAll(fd, "{\"cmd\":\"ping\"}\n")) {
        err = "ping write failed";
        disconnect();
        return false;
    }
    LineReader reader(fd, kMaxReplyFrameBytes);
    std::string line;
    if (reader.readLine(line) != LineReader::Status::Line) {
        err = "no ping reply";
        disconnect();
        return false;
    }
    JsonValue doc;
    if (!tryParseJson(line, doc, nullptr) || !doc.find("ok")) {
        err = "bad ping reply";
        disconnect();
        return false;
    }
    return true;
}

} // namespace shelf
