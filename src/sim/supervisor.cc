#include "sim/supervisor.hh"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "base/json.hh"
#include "base/logging.hh"
#include "base/strutil.hh"
#include "diag/crash_dump.hh"
#include "sim/experiment.hh"
#include "sim/journal.hh"
#include "sim/launcher.hh"
#include "sim/parallel.hh"
#include "sim/system.hh"
#include "workload/mix.hh"
#include "workload/trace_io.hh"

namespace shelf
{

namespace
{

double
envDouble(const char *name, double dflt)
{
    const char *s = std::getenv(name);
    if (!s)
        return dflt;
    double v;
    fatal_if(!tryParseDouble(s, v) || v < 0, "bad %s '%s'", name, s);
    return v;
}

uint64_t
envU64(const char *name, uint64_t dflt)
{
    const char *s = std::getenv(name);
    if (!s)
        return dflt;
    uint64_t v;
    fatal_if(!tryParseU64(s, v), "bad %s '%s'", name, s);
    return v;
}

bool
envFlag(const char *name)
{
    const char *s = std::getenv(name);
    return s && *s && std::string(s) != "0";
}

double
elapsedSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

SupervisorOptions
SupervisorOptions::fromEnv()
{
    SupervisorOptions opt;
    opt.isolate = envFlag("SHELFSIM_ISOLATE");
    opt.timeoutSeconds = envDouble("SHELFSIM_TIMEOUT", 0);
    opt.retries = static_cast<unsigned>(
        envU64("SHELFSIM_RETRIES", opt.retries));
    opt.backoffSeconds =
        envDouble("SHELFSIM_BACKOFF", opt.backoffSeconds);
    if (const char *s = std::getenv("SHELFSIM_JOURNAL"))
        opt.journalPath = s;
    opt.resume = envFlag("SHELFSIM_RESUME");
    if (const char *s = std::getenv("SHELFSIM_DUMP_DIR"))
        opt.dumpDir = s;
    fatal_if(opt.resume && opt.journalPath.empty(),
             "SHELFSIM_RESUME needs SHELFSIM_JOURNAL");
    return opt;
}

double
SweepSupervisor::backoffDelay(unsigned attempt, double baseSeconds)
{
    if (attempt == 0 || baseSeconds <= 0)
        return 0;
    double d = baseSeconds;
    for (unsigned i = 1; i < attempt && d < 5.0; ++i)
        d *= 2;
    return d < 5.0 ? d : 5.0;
}

double
SweepSupervisor::backoffDelayJittered(unsigned attempt,
                                      double baseSeconds,
                                      uint64_t seed)
{
    double d = backoffDelay(attempt, baseSeconds);
    if (d <= 0)
        return 0;
    // Deterministic splitmix64-style jitter: the same (seed,
    // attempt) always waits the same amount (reproducible runs),
    // but distinct jobs and nodes decorrelate, so a fleet of
    // retriers does not hammer a recovering node in lockstep.
    uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (attempt + 1);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    double frac =
        static_cast<double>(x >> 11) / 9007199254740992.0; // [0,1)
    return d * (1.0 + frac / 4.0); // [d, 1.25d)
}

SweepSupervisor::SweepSupervisor(SupervisorOptions opt_)
    : opt(std::move(opt_))
{
    if (opt.workerBinary.empty()) {
        // Resolve the symlink up front so repro artifacts name the
        // actual binary, not whichever process re-runs them.
        char buf[4096];
        ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
        if (n > 0) {
            buf[n] = '\0';
            opt.workerBinary = buf;
        } else {
            opt.workerBinary = "/proc/self/exe";
        }
    }
    if (!opt.launcher) {
        opt.launcher = std::make_shared<LocalSpawnLauncher>(
            opt.workerBinary, opt.dumpDir);
    }
}

JobOutcome
SweepSupervisor::runIsolated(const validate::SweepJobSpec &spec)
{
    JobOutcome oc;
    std::string specJson = spec.toJson();
    uint64_t jitterSeed = fnv1a64(specJson);
    unsigned maxAttempts = opt.retries + 1;
    for (unsigned a = 1; a <= maxAttempts; ++a) {
        if (a > 1) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(backoffDelayJittered(
                    a - 1, opt.backoffSeconds, jitterSeed)));
        }
        oc.attempts = a;
        LaunchResult at =
            opt.launcher->launch(specJson, opt.timeoutSeconds);
        oc.exitCode = at.exitCode;
        oc.termSignal = at.termSignal;
        oc.timedOut = at.timedOut;
        oc.stderrTail = at.stderrTail;
        oc.dumpFile = at.dumpFile;
        if (oc.stderrTail.empty() && !at.error.empty())
            oc.stderrTail = at.error;
        if (at.ok) {
            oc.status = JobOutcome::Status::Ok;
            oc.result = SystemResult::fromJson(at.resultJson);
            return oc;
        }
        oc.status = JobOutcome::Status::Quarantined;
    }
    return oc;
}

JobOutcome
SweepSupervisor::execute(const validate::SweepJobSpec &spec)
{
    auto t0 = std::chrono::steady_clock::now();
    JobOutcome oc;
    if (opt.isolate) {
        oc = runIsolated(spec);
    } else if (!spec.fault.empty()) {
        // In-process mode cannot contain a real fault (that is the
        // point of isolation); fault-marked jobs fail synthetically
        // so the retry/quarantine/journal machinery stays testable
        // without forking.
        uint64_t jitterSeed = fnv1a64(spec.toJson());
        unsigned maxAttempts = opt.retries + 1;
        for (unsigned a = 1; a <= maxAttempts; ++a) {
            if (a > 1) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(
                        backoffDelayJittered(
                            a - 1, opt.backoffSeconds, jitterSeed)));
            }
            oc.attempts = a;
        }
        oc.status = JobOutcome::Status::Quarantined;
        oc.exitCode = 3;
        oc.stderrTail = csprintf(
            "fault '%s' injected (in-process mode)",
            spec.fault.c_str());
    } else {
        oc.attempts = 1;
        std::string jerr;
        if (tryRunSweepJob(spec, oc.result, jerr)) {
            oc.status = JobOutcome::Status::Ok;
        } else {
            // Deterministic input failure (bad trace file): the
            // rest of the sweep continues; this one cell is
            // quarantined with the precise reason, no retries.
            oc.status = JobOutcome::Status::Quarantined;
            oc.exitCode = kJobInputErrorExit;
            oc.stderrTail = jerr;
        }
    }
    oc.wallSeconds = elapsedSince(t0);
    if (!oc.ok()) {
        oc.repro = csprintf("%s --worker '%s'",
                            opt.workerBinary.c_str(),
                            spec.toJson().c_str());
    }
    return oc;
}

JobOutcome
SweepSupervisor::runOne(const validate::SweepJobSpec &spec)
{
    return execute(spec);
}

std::vector<JobOutcome>
SweepSupervisor::run(const std::vector<validate::SweepJobSpec> &jobs)
{
    std::vector<JobOutcome> outcomes(jobs.size());

    std::map<std::string, JournalRecord> done;
    if (opt.resume && !opt.journalPath.empty())
        done = loadJournal(opt.journalPath);

    std::vector<size_t> pending;
    for (size_t i = 0; i < jobs.size(); ++i) {
        std::string key = jobs[i].toJson();
        auto it = done.find(key);
        if (it == done.end()) {
            pending.push_back(i);
            continue;
        }
        if (!outcomeFromJournal(it->second, outcomes[i])) {
            warn("journal: unreadable result for %s; re-running",
                 key.c_str());
            outcomes[i] = JobOutcome();
            pending.push_back(i);
            continue;
        }
        if (progress)
            progress(i, outcomes[i]);
    }

    JournalWriter journal;
    std::string jerr;
    fatal_if(!journal.open(opt.journalPath, &jerr), "%s",
             jerr.c_str());

    runJobs(pending.size(), [&](size_t k) {
        size_t i = pending[k];
        JobOutcome oc = execute(jobs[i]);
        journal.append(journalLine(jobs[i].toJson(), oc));
        outcomes[i] = std::move(oc);
        if (progress)
            progress(i, outcomes[i]);
    }, opt.jobs);

    return outcomes;
}

size_t
SweepSupervisor::failures(const std::vector<JobOutcome> &outcomes)
{
    size_t n = 0;
    for (const auto &oc : outcomes)
        n += !oc.ok();
    return n;
}

std::string
SweepSupervisor::failureSummary(
    const std::vector<JobOutcome> &outcomes)
{
    size_t bad = failures(outcomes);
    if (bad == 0)
        return "";
    std::string out = csprintf(
        "%zu of %zu sweep jobs quarantined:\n", bad,
        outcomes.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
        const JobOutcome &oc = outcomes[i];
        if (oc.ok())
            continue;
        std::string why;
        if (oc.timedOut)
            why = "watchdog timeout";
        else if (oc.termSignal)
            why = csprintf("signal %d", oc.termSignal);
        else
            why = csprintf("exit code %d", oc.exitCode);
        out += csprintf("  job %zu: %s after %u attempt%s%s\n", i,
                        why.c_str(), oc.attempts,
                        oc.attempts == 1 ? "" : "s",
                        oc.fromJournal ? " (journaled)" : "");
        if (!oc.stderrTail.empty()) {
            // Last stderr line only; the full tail is in the
            // journal record.
            std::string tail = oc.stderrTail;
            while (!tail.empty() && tail.back() == '\n')
                tail.pop_back();
            size_t nl = tail.rfind('\n');
            out += csprintf("    stderr: %s\n",
                            tail.substr(nl == std::string::npos
                                            ? 0 : nl + 1).c_str());
        }
        if (!oc.repro.empty())
            out += csprintf("    repro: %s\n", oc.repro.c_str());
        if (!oc.dumpFile.empty())
            out += csprintf("    dump: %s\n", oc.dumpFile.c_str());
    }
    return out;
}

bool
tryRunSweepJob(const validate::SweepJobSpec &spec,
               SystemResult &res, std::string &err)
{
    if (spec.fault == "crash") {
        std::raise(SIGSEGV);
    } else if (spec.fault == "hang") {
        for (;;)
            std::this_thread::sleep_for(std::chrono::seconds(1));
    } else if (spec.fault == "exit") {
        std::exit(3);
    } else if (spec.fault == "stop") {
        // SIGSTOP, not a crash: the worker is alive but frozen, so
        // only the supervisor's wall-clock watchdog — never an exit
        // status — can notice. Exercises the "wedged, not dead"
        // recovery path.
        std::raise(SIGSTOP);
        // If something SIGCONTs us (an interactive debugger), fall
        // through and run normally.
    } else if (!spec.fault.empty() && spec.fault != "wedge") {
        fatal("unknown fault kind '%s'", spec.fault.c_str());
    }

    CoreParams core = spec.core;
    core.validate();
    SimControls ctl;
    ctl.warmupCycles = static_cast<Cycle>(spec.warmupCycles);
    ctl.measureCycles = static_cast<Cycle>(spec.measureCycles);
    ctl.seed = spec.seed;
    ctl.numCores = spec.numCores;
    ctl.allocation = spec.allocation;
    if (spec.fault == "wedge") {
        // Stall retirement partway into warmup and clamp the
        // forward-progress watchdog so it is guaranteed to fire
        // (and write its crash dump) well inside the simulation's
        // own cycle budget -- otherwise the run would just finish
        // "successfully" with zero retired instructions.
        ctl.wedgeAtCycle =
            std::max<Cycle>(1, ctl.warmupCycles / 2);
        Cycle budget = ctl.warmupCycles + ctl.measureCycles;
        Cycle room = budget > ctl.wedgeAtCycle
            ? (budget - ctl.wedgeAtCycle) / 2 : 0;
        unsigned clamp =
            static_cast<unsigned>(std::max<Cycle>(8, room));
        if (core.watchdogCycles == 0 || core.watchdogCycles > clamp)
            core.watchdogCycles = clamp;
    }

    if (spec.tracePaths.empty()) {
        WorkloadMix mix;
        mix.benchmarks = spec.mixBenchmarks;
        res = runMix(core, mix, ctl);
        return true;
    }

    // Trace-backed job: the traces are untrusted external input, so
    // every failure here returns an error instead of crashing —
    // fail-precise, since a corrupted file errors identically on
    // every node and retrying would just waste attempts.
    SystemConfig cfg;
    cfg.core = core;
    cfg.seed = ctl.seed;
    cfg.warmupCycles = ctl.warmupCycles;
    cfg.measureCycles = ctl.measureCycles;
    cfg.numCores = ctl.numCores;
    cfg.allocation = ctl.allocation;
    for (size_t i = 0; i < spec.tracePaths.size(); ++i) {
        const std::string &path = spec.tracePaths[i];
        if (i < spec.traceHashes.size()) {
            // The canonical key promised this content; a mismatch
            // means the file changed (or never was) what the job
            // was keyed on, and running it would poison the cache.
            std::string hash, herr;
            if (!tryTraceFileHash(path, hash, herr)) {
                err = csprintf("trace '%s': %s", path.c_str(),
                               herr.c_str());
                return false;
            }
            if (hash != spec.traceHashes[i]) {
                err = csprintf(
                    "trace '%s': content hash mismatch (job "
                    "expects %s, file is %s)", path.c_str(),
                    spec.traceHashes[i].c_str(), hash.c_str());
                return false;
            }
        }
        Trace tr;
        TraceError te;
        std::string detail;
        if (!tryReadTraceFile(path, tr, TraceReadOptions{}, &te,
                              &detail)) {
            err = csprintf("trace '%s': TraceError %s: %s",
                           path.c_str(), traceErrorName(te),
                           detail.c_str());
            return false;
        }
        if (tr.empty()) {
            err = csprintf("trace '%s' contains no instructions",
                           path.c_str());
            return false;
        }
        size_t slash = path.find_last_of('/');
        cfg.benchmarks.push_back(
            slash == std::string::npos ? path
                                       : path.substr(slash + 1));
        cfg.externalTraces.push_back(std::move(tr));
    }
    System sys(cfg);
    if (ctl.wedgeAtCycle) {
        for (unsigned c = 0; c < sys.numCores(); ++c)
            if (sys.hasCore(c))
                sys.core(c).wedgeRetirementAt(ctl.wedgeAtCycle);
    }
    res = sys.run();
    return true;
}

SystemResult
runSweepJob(const validate::SweepJobSpec &spec)
{
    SystemResult res;
    std::string err;
    fatal_if(!tryRunSweepJob(spec, res, err), "%s", err.c_str());
    return res;
}

bool
maybeRunSweepWorker(int argc, char **argv, int *rc)
{
    if (argc != 3 || std::string(argv[1]) != "--worker")
        return false;

    // Workers log through stderr unconditionally (the supervisor
    // captures it into the quarantine record), tagged with a short
    // stable hash of the job spec so interleaved retries remain
    // attributable.
    setAlwaysWarn(true);
    setLogTag(csprintf("worker:%016llx",
                       static_cast<unsigned long long>(
                           fnv1a64(argv[2]))));
    // Every worker is a fresh process, so per-process "one-shot"
    // warnings would re-fire for every job of a sweep and flood the
    // captured stderr tails; the CLI front end already warned once.
    suppressTraceDeprecationWarning();

    if (const char *dir = std::getenv("SHELFSIM_DUMP_DIR")) {
        diag::setRepro(csprintf("%s --worker '%s'", argv[0],
                                argv[2]));
        diag::enableCrashDumps(dir);
        diag::installCrashSignalHandlers();
    }

    SystemResult res;
    {
        validate::SweepJobSpec spec =
            validate::SweepJobSpec::fromJson(argv[2]);
        std::string jerr;
        if (!tryRunSweepJob(spec, res, jerr)) {
            // Bad job input (e.g. corrupt trace): report precisely
            // on stderr (the supervisor captures the tail into the
            // quarantine record) and exit with the input-error
            // code, without taking the crash-dump path.
            fprintf(stderr, "%s\n", jerr.c_str());
            fflush(stderr);
            *rc = kJobInputErrorExit;
            return true;
        }
    }
    // Full precision: the parent reconstructs bit-identical doubles
    // from this line, keeping isolated sweeps byte-identical to
    // in-process ones.
    printf("%s%s\n", kWorkerResultMarker,
           res.toJson(JsonWriter::kFullPrecision).c_str());
    fflush(stdout);
    *rc = 0;
    return true;
}

} // namespace shelf
