#include "sim/supervisor.hh"

#include <poll.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

#include "base/json.hh"
#include "base/logging.hh"
#include "base/strutil.hh"
#include "diag/crash_dump.hh"
#include "sim/experiment.hh"
#include "sim/parallel.hh"
#include "workload/mix.hh"

extern char **environ;

namespace shelf
{

namespace
{

/** Worker stdout marker preceding the result payload. */
constexpr const char *kResultMarker = "SHELFSIM-RESULT ";

/** Worker stderr marker announcing a written crash-dump file. */
constexpr const char *kDumpMarker = "SHELFSIM-DUMP ";

/** Bytes of worker stderr kept for failure reports. */
constexpr size_t kStderrTailBytes = 4096;

/**
 * Extract the path from the last line-anchored "SHELFSIM-DUMP "
 * marker in a worker's stderr tail (last wins: a retried panic may
 * announce several dumps, and the final one describes the terminal
 * state).
 */
std::string
findDumpFile(const std::string &stderrTail)
{
    size_t pos = std::string::npos;
    size_t from = 0;
    for (;;) {
        size_t hit = stderrTail.find(kDumpMarker, from);
        if (hit == std::string::npos)
            break;
        if (hit == 0 || stderrTail[hit - 1] == '\n')
            pos = hit;
        from = hit + 1;
    }
    if (pos == std::string::npos)
        return "";
    size_t start = pos + strlen(kDumpMarker);
    size_t end = stderrTail.find('\n', start);
    return stderrTail.substr(
        start,
        end == std::string::npos ? std::string::npos : end - start);
}

double
envDouble(const char *name, double dflt)
{
    const char *s = std::getenv(name);
    if (!s)
        return dflt;
    double v;
    fatal_if(!tryParseDouble(s, v) || v < 0, "bad %s '%s'", name, s);
    return v;
}

uint64_t
envU64(const char *name, uint64_t dflt)
{
    const char *s = std::getenv(name);
    if (!s)
        return dflt;
    uint64_t v;
    fatal_if(!tryParseU64(s, v), "bad %s '%s'", name, s);
    return v;
}

bool
envFlag(const char *name)
{
    const char *s = std::getenv(name);
    return s && *s && std::string(s) != "0";
}

double
elapsedSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** One finished-job record parsed back from the journal. */
struct JournalRecord
{
    std::string status;
    unsigned attempts = 0;
    double wallSeconds = 0;
    std::string resultJson;
    int exitCode = 0;
    int termSignal = 0;
    bool timedOut = false;
    std::string stderrTail;
    std::string repro;
    std::string dumpFile;
};

std::string
journalLine(const std::string &key, const JobOutcome &oc)
{
    JsonWriter w(JsonWriter::kFullPrecision);
    w.beginObject();
    w.field("key", key);
    w.field("status", oc.ok() ? "ok" : "quarantined");
    w.field("attempts", static_cast<uint64_t>(oc.attempts));
    w.field("wall_s", oc.wallSeconds);
    if (oc.ok()) {
        w.field("result",
                oc.result.toJson(JsonWriter::kFullPrecision));
    } else {
        w.field("timed_out", oc.timedOut);
        w.field("exit_code", oc.exitCode);
        w.field("signal", oc.termSignal);
        w.field("stderr", oc.stderrTail);
        w.field("repro", oc.repro);
        if (!oc.dumpFile.empty())
            w.field("dump", oc.dumpFile);
    }
    w.endObject();
    return w.str();
}

/**
 * Load every well-formed journal record, last-wins per job key. A
 * torn final line (the writer was SIGKILLed mid-append) parses as
 * malformed JSON and is skipped with a warning rather than
 * aborting: losing the in-flight record is exactly the contract.
 */
std::map<std::string, JournalRecord>
loadJournal(const std::string &path)
{
    std::map<std::string, JournalRecord> out;
    FILE *f = fopen(path.c_str(), "r");
    if (!f)
        return out; // nothing journaled yet: resume from scratch
    std::string line;
    size_t lineno = 0;
    char buf[4096];
    while (fgets(buf, sizeof(buf), f)) {
        line += buf;
        if (line.empty() || line.back() != '\n')
            continue; // long record: keep accumulating
        ++lineno;
        std::string text = line.substr(0, line.size() - 1);
        line.clear();
        if (text.empty())
            continue;
        JsonValue doc;
        if (!tryParseJson(text, doc, nullptr) || !doc.isObject()) {
            warn("journal %s:%zu: skipping malformed record (torn "
                 "write?)", path.c_str(), lineno);
            continue;
        }
        const JsonValue *key = doc.find("key");
        const JsonValue *status = doc.find("status");
        if (!key || !key->isString() || !status ||
            !status->isString()) {
            warn("journal %s:%zu: skipping record without key/"
                 "status", path.c_str(), lineno);
            continue;
        }
        JournalRecord rec;
        rec.status = status->raw;
        if (const JsonValue *v = doc.find("attempts"))
            rec.attempts = static_cast<unsigned>(v->asU64());
        if (const JsonValue *v = doc.find("wall_s"))
            rec.wallSeconds = v->asDouble();
        if (const JsonValue *v = doc.find("result"))
            rec.resultJson = v->raw;
        if (const JsonValue *v = doc.find("timed_out"))
            rec.timedOut = v->isBool() && v->boolean;
        if (const JsonValue *v = doc.find("exit_code"))
            rec.exitCode = static_cast<int>(v->asDouble());
        if (const JsonValue *v = doc.find("signal"))
            rec.termSignal = static_cast<int>(v->asDouble());
        if (const JsonValue *v = doc.find("stderr"))
            rec.stderrTail = v->raw;
        if (const JsonValue *v = doc.find("repro"))
            rec.repro = v->raw;
        if (const JsonValue *v = doc.find("dump"))
            rec.dumpFile = v->raw;
        out[key->raw] = std::move(rec);
    }
    fclose(f);
    return out;
}

/** Result of one worker-process execution. */
struct Attempt
{
    bool ok = false;
    SystemResult result;
    int exitCode = 0;
    int termSignal = 0;
    bool timedOut = false;
    std::string stderrTail;
    std::string dumpFile;
};

void
appendTail(std::string &tail, const char *data, size_t n)
{
    tail.append(data, n);
    if (tail.size() > kStderrTailBytes)
        tail.erase(0, tail.size() - kStderrTailBytes);
}

/**
 * Spawn `<bin> --worker '<spec>'`, capture its stdout/stderr, and
 * enforce the wall-clock watchdog: past the deadline the child is
 * SIGKILLed and the attempt marked timed out. Only returns once the
 * child is reaped — no zombies, even on the kill path.
 */
Attempt
spawnWorker(const std::string &bin, const std::string &spec,
            double timeoutSeconds, const std::string &dumpDir)
{
    Attempt at;

    // Per-spawn environment: SHELFSIM_DUMP_DIR tells the worker
    // where to write crash dumps. Built as a private envp rather
    // than via setenv() because spawnWorker runs concurrently on
    // pool threads and setenv() is not thread-safe.
    std::string dumpVar;
    std::vector<char *> envp;
    for (char **e = environ; *e; ++e) {
        if (strncmp(*e, "SHELFSIM_DUMP_DIR=", 18) != 0)
            envp.push_back(*e);
    }
    if (!dumpDir.empty()) {
        dumpVar = "SHELFSIM_DUMP_DIR=" + dumpDir;
        envp.push_back(dumpVar.data());
    }
    envp.push_back(nullptr);

    int outPipe[2], errPipe[2];
    if (pipe(outPipe) != 0) {
        at.exitCode = 127;
        at.stderrTail = csprintf("pipe: %s", strerror(errno));
        return at;
    }
    if (pipe(errPipe) != 0) {
        at.exitCode = 127;
        at.stderrTail = csprintf("pipe: %s", strerror(errno));
        close(outPipe[0]);
        close(outPipe[1]);
        return at;
    }

    posix_spawn_file_actions_t fa;
    posix_spawn_file_actions_init(&fa);
    posix_spawn_file_actions_adddup2(&fa, outPipe[1], 1);
    posix_spawn_file_actions_adddup2(&fa, errPipe[1], 2);
    posix_spawn_file_actions_addclose(&fa, outPipe[0]);
    posix_spawn_file_actions_addclose(&fa, outPipe[1]);
    posix_spawn_file_actions_addclose(&fa, errPipe[0]);
    posix_spawn_file_actions_addclose(&fa, errPipe[1]);

    std::string arg0 = bin, arg1 = "--worker", arg2 = spec;
    char *argv[] = { arg0.data(), arg1.data(), arg2.data(),
                     nullptr };

    pid_t pid = -1;
    int rc = posix_spawn(&pid, bin.c_str(), &fa, nullptr, argv,
                         envp.data());
    posix_spawn_file_actions_destroy(&fa);
    close(outPipe[1]);
    close(errPipe[1]);
    if (rc != 0) {
        close(outPipe[0]);
        close(errPipe[0]);
        at.exitCode = 127;
        at.stderrTail =
            csprintf("spawn '%s': %s", bin.c_str(), strerror(rc));
        return at;
    }

    auto t0 = std::chrono::steady_clock::now();
    bool killed = false;
    std::string out;
    struct pollfd fds[2] = { { outPipe[0], POLLIN, 0 },
                             { errPipe[0], POLLIN, 0 } };
    int openFds = 2;
    while (openFds > 0) {
        int timeout_ms = -1;
        if (timeoutSeconds > 0 && !killed) {
            double left = timeoutSeconds - elapsedSince(t0);
            timeout_ms =
                left > 0 ? static_cast<int>(left * 1000) + 1 : 0;
        }
        int n = poll(fds, 2, timeout_ms);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0) {
            // Watchdog: the job overran its budget. Kill the worker
            // and keep draining the pipes until EOF so the process
            // can be reaped.
            kill(pid, SIGKILL);
            killed = true;
            at.timedOut = true;
            continue;
        }
        for (auto &p : fds) {
            if (p.fd < 0 ||
                !(p.revents & (POLLIN | POLLHUP | POLLERR))) {
                continue;
            }
            char buf[4096];
            ssize_t got = read(p.fd, buf, sizeof(buf));
            if (got > 0) {
                if (p.fd == outPipe[0])
                    out.append(buf, static_cast<size_t>(got));
                else
                    appendTail(at.stderrTail, buf,
                               static_cast<size_t>(got));
            } else {
                close(p.fd);
                p.fd = -1;
                --openFds;
            }
        }
    }
    if (fds[0].fd >= 0)
        close(fds[0].fd);
    if (fds[1].fd >= 0)
        close(fds[1].fd);

    int status = 0;
    while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    if (WIFEXITED(status))
        at.exitCode = WEXITSTATUS(status);
    else if (WIFSIGNALED(status))
        at.termSignal = WTERMSIG(status);

    at.dumpFile = findDumpFile(at.stderrTail);

    if (at.timedOut || at.exitCode != 0 || at.termSignal != 0)
        return at;

    size_t pos = out.rfind(kResultMarker);
    if (pos == std::string::npos || (pos > 0 && out[pos - 1] != '\n')) {
        at.stderrTail += "[worker printed no result payload]";
        at.exitCode = at.exitCode ? at.exitCode : 125;
        return at;
    }
    size_t start = pos + strlen(kResultMarker);
    size_t end = out.find('\n', start);
    std::string payload = out.substr(
        start, end == std::string::npos ? std::string::npos
                                        : end - start);
    JsonValue probe;
    if (!tryParseJson(payload, probe, nullptr)) {
        at.stderrTail += "[worker result payload truncated]";
        at.exitCode = 125;
        return at;
    }
    at.result = SystemResult::fromJson(payload);
    at.ok = true;
    return at;
}

} // namespace

SupervisorOptions
SupervisorOptions::fromEnv()
{
    SupervisorOptions opt;
    opt.isolate = envFlag("SHELFSIM_ISOLATE");
    opt.timeoutSeconds = envDouble("SHELFSIM_TIMEOUT", 0);
    opt.retries = static_cast<unsigned>(
        envU64("SHELFSIM_RETRIES", opt.retries));
    opt.backoffSeconds =
        envDouble("SHELFSIM_BACKOFF", opt.backoffSeconds);
    if (const char *s = std::getenv("SHELFSIM_JOURNAL"))
        opt.journalPath = s;
    opt.resume = envFlag("SHELFSIM_RESUME");
    if (const char *s = std::getenv("SHELFSIM_DUMP_DIR"))
        opt.dumpDir = s;
    fatal_if(opt.resume && opt.journalPath.empty(),
             "SHELFSIM_RESUME needs SHELFSIM_JOURNAL");
    return opt;
}

double
SweepSupervisor::backoffDelay(unsigned attempt, double baseSeconds)
{
    if (attempt == 0 || baseSeconds <= 0)
        return 0;
    double d = baseSeconds;
    for (unsigned i = 1; i < attempt && d < 5.0; ++i)
        d *= 2;
    return d < 5.0 ? d : 5.0;
}

SweepSupervisor::SweepSupervisor(SupervisorOptions opt_)
    : opt(std::move(opt_))
{
    if (opt.workerBinary.empty()) {
        // Resolve the symlink up front so repro artifacts name the
        // actual binary, not whichever process re-runs them.
        char buf[4096];
        ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
        if (n > 0) {
            buf[n] = '\0';
            opt.workerBinary = buf;
        } else {
            opt.workerBinary = "/proc/self/exe";
        }
    }
}

JobOutcome
SweepSupervisor::runIsolated(const validate::SweepJobSpec &spec)
{
    JobOutcome oc;
    std::string specJson = spec.toJson();
    unsigned maxAttempts = opt.retries + 1;
    for (unsigned a = 1; a <= maxAttempts; ++a) {
        if (a > 1) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(
                    backoffDelay(a - 1, opt.backoffSeconds)));
        }
        oc.attempts = a;
        Attempt at = spawnWorker(opt.workerBinary, specJson,
                                 opt.timeoutSeconds, opt.dumpDir);
        oc.exitCode = at.exitCode;
        oc.termSignal = at.termSignal;
        oc.timedOut = at.timedOut;
        oc.stderrTail = at.stderrTail;
        oc.dumpFile = at.dumpFile;
        if (at.ok) {
            oc.status = JobOutcome::Status::Ok;
            oc.result = std::move(at.result);
            return oc;
        }
        oc.status = JobOutcome::Status::Quarantined;
    }
    return oc;
}

JobOutcome
SweepSupervisor::execute(const validate::SweepJobSpec &spec)
{
    auto t0 = std::chrono::steady_clock::now();
    JobOutcome oc;
    if (opt.isolate) {
        oc = runIsolated(spec);
    } else if (!spec.fault.empty()) {
        // In-process mode cannot contain a real fault (that is the
        // point of isolation); fault-marked jobs fail synthetically
        // so the retry/quarantine/journal machinery stays testable
        // without forking.
        unsigned maxAttempts = opt.retries + 1;
        for (unsigned a = 1; a <= maxAttempts; ++a) {
            if (a > 1) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(
                        backoffDelay(a - 1, opt.backoffSeconds)));
            }
            oc.attempts = a;
        }
        oc.status = JobOutcome::Status::Quarantined;
        oc.exitCode = 3;
        oc.stderrTail = csprintf(
            "fault '%s' injected (in-process mode)",
            spec.fault.c_str());
    } else {
        oc.attempts = 1;
        oc.result = runSweepJob(spec);
        oc.status = JobOutcome::Status::Ok;
    }
    oc.wallSeconds = elapsedSince(t0);
    if (!oc.ok()) {
        oc.repro = csprintf("%s --worker '%s'",
                            opt.workerBinary.c_str(),
                            spec.toJson().c_str());
    }
    return oc;
}

JobOutcome
SweepSupervisor::runOne(const validate::SweepJobSpec &spec)
{
    return execute(spec);
}

std::vector<JobOutcome>
SweepSupervisor::run(const std::vector<validate::SweepJobSpec> &jobs)
{
    std::vector<JobOutcome> outcomes(jobs.size());

    std::map<std::string, JournalRecord> done;
    if (opt.resume && !opt.journalPath.empty())
        done = loadJournal(opt.journalPath);

    std::vector<size_t> pending;
    for (size_t i = 0; i < jobs.size(); ++i) {
        std::string key = jobs[i].toJson();
        auto it = done.find(key);
        if (it == done.end()) {
            pending.push_back(i);
            continue;
        }
        const JournalRecord &rec = it->second;
        JobOutcome &oc = outcomes[i];
        oc.fromJournal = true;
        oc.attempts = rec.attempts;
        oc.wallSeconds = rec.wallSeconds;
        if (rec.status == "ok") {
            JsonValue probe;
            if (!tryParseJson(rec.resultJson, probe, nullptr)) {
                warn("journal: unreadable result for %s; re-running",
                     key.c_str());
                oc = JobOutcome();
                pending.push_back(i);
                continue;
            }
            oc.status = JobOutcome::Status::Ok;
            oc.result = SystemResult::fromJson(rec.resultJson);
        } else {
            oc.status = JobOutcome::Status::Quarantined;
            oc.exitCode = rec.exitCode;
            oc.termSignal = rec.termSignal;
            oc.timedOut = rec.timedOut;
            oc.stderrTail = rec.stderrTail;
            oc.repro = rec.repro;
            oc.dumpFile = rec.dumpFile;
        }
        if (progress)
            progress(i, oc);
    }

    FILE *jf = nullptr;
    if (!opt.journalPath.empty()) {
        jf = fopen(opt.journalPath.c_str(), "a");
        fatal_if(!jf, "cannot open journal '%s': %s",
                 opt.journalPath.c_str(), strerror(errno));
    }
    std::mutex jm;

    runJobs(pending.size(), [&](size_t k) {
        size_t i = pending[k];
        JobOutcome oc = execute(jobs[i]);
        if (jf) {
            std::lock_guard<std::mutex> lk(jm);
            fprintf(jf, "%s\n",
                    journalLine(jobs[i].toJson(), oc).c_str());
            fflush(jf);
        }
        outcomes[i] = std::move(oc);
        if (progress)
            progress(i, outcomes[i]);
    }, opt.jobs);

    if (jf)
        fclose(jf);
    return outcomes;
}

size_t
SweepSupervisor::failures(const std::vector<JobOutcome> &outcomes)
{
    size_t n = 0;
    for (const auto &oc : outcomes)
        n += !oc.ok();
    return n;
}

std::string
SweepSupervisor::failureSummary(
    const std::vector<JobOutcome> &outcomes)
{
    size_t bad = failures(outcomes);
    if (bad == 0)
        return "";
    std::string out = csprintf(
        "%zu of %zu sweep jobs quarantined:\n", bad,
        outcomes.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
        const JobOutcome &oc = outcomes[i];
        if (oc.ok())
            continue;
        std::string why;
        if (oc.timedOut)
            why = "watchdog timeout";
        else if (oc.termSignal)
            why = csprintf("signal %d", oc.termSignal);
        else
            why = csprintf("exit code %d", oc.exitCode);
        out += csprintf("  job %zu: %s after %u attempt%s%s\n", i,
                        why.c_str(), oc.attempts,
                        oc.attempts == 1 ? "" : "s",
                        oc.fromJournal ? " (journaled)" : "");
        if (!oc.stderrTail.empty()) {
            // Last stderr line only; the full tail is in the
            // journal record.
            std::string tail = oc.stderrTail;
            while (!tail.empty() && tail.back() == '\n')
                tail.pop_back();
            size_t nl = tail.rfind('\n');
            out += csprintf("    stderr: %s\n",
                            tail.substr(nl == std::string::npos
                                            ? 0 : nl + 1).c_str());
        }
        if (!oc.repro.empty())
            out += csprintf("    repro: %s\n", oc.repro.c_str());
        if (!oc.dumpFile.empty())
            out += csprintf("    dump: %s\n", oc.dumpFile.c_str());
    }
    return out;
}

SystemResult
runSweepJob(const validate::SweepJobSpec &spec)
{
    if (spec.fault == "crash") {
        std::raise(SIGSEGV);
    } else if (spec.fault == "hang") {
        for (;;)
            std::this_thread::sleep_for(std::chrono::seconds(1));
    } else if (spec.fault == "exit") {
        std::exit(3);
    } else if (!spec.fault.empty() && spec.fault != "wedge") {
        fatal("unknown fault kind '%s'", spec.fault.c_str());
    }

    CoreParams core = spec.core;
    core.validate();
    WorkloadMix mix;
    mix.benchmarks = spec.mixBenchmarks;
    SimControls ctl;
    ctl.warmupCycles = static_cast<Cycle>(spec.warmupCycles);
    ctl.measureCycles = static_cast<Cycle>(spec.measureCycles);
    ctl.seed = spec.seed;
    if (spec.fault == "wedge") {
        // Stall retirement partway into warmup and clamp the
        // forward-progress watchdog so it is guaranteed to fire
        // (and write its crash dump) well inside the simulation's
        // own cycle budget -- otherwise the run would just finish
        // "successfully" with zero retired instructions.
        ctl.wedgeAtCycle =
            std::max<Cycle>(1, ctl.warmupCycles / 2);
        Cycle budget = ctl.warmupCycles + ctl.measureCycles;
        Cycle room = budget > ctl.wedgeAtCycle
            ? (budget - ctl.wedgeAtCycle) / 2 : 0;
        unsigned clamp =
            static_cast<unsigned>(std::max<Cycle>(8, room));
        if (core.watchdogCycles == 0 || core.watchdogCycles > clamp)
            core.watchdogCycles = clamp;
    }
    return runMix(core, mix, ctl);
}

bool
maybeRunSweepWorker(int argc, char **argv, int *rc)
{
    if (argc != 3 || std::string(argv[1]) != "--worker")
        return false;

    // Workers log through stderr unconditionally (the supervisor
    // captures it into the quarantine record), tagged with a short
    // stable hash of the job spec so interleaved retries remain
    // attributable.
    setAlwaysWarn(true);
    setLogTag(csprintf("worker:%016llx",
                       static_cast<unsigned long long>(
                           fnv1a64(argv[2]))));

    if (const char *dir = std::getenv("SHELFSIM_DUMP_DIR")) {
        diag::setRepro(csprintf("%s --worker '%s'", argv[0],
                                argv[2]));
        diag::enableCrashDumps(dir);
        diag::installCrashSignalHandlers();
    }

    SystemResult res;
    {
        validate::SweepJobSpec spec =
            validate::SweepJobSpec::fromJson(argv[2]);
        res = runSweepJob(spec);
    }
    // Full precision: the parent reconstructs bit-identical doubles
    // from this line, keeping isolated sweeps byte-identical to
    // in-process ones.
    printf("%s%s\n", kResultMarker,
           res.toJson(JsonWriter::kFullPrecision).c_str());
    fflush(stdout);
    *rc = 0;
    return true;
}

} // namespace shelf
