#include "sim/parallel.hh"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "base/logging.hh"
#include "workload/spec2006.hh"

namespace shelf
{

namespace
{

thread_local bool tlsInsideWorker = false;

unsigned
jobsFromEnv()
{
    if (const char *s = std::getenv("SHELFSIM_JOBS")) {
        long v = std::atol(s);
        fatal_if(v < 1, "bad SHELFSIM_JOBS '%s'", s);
        return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

/** Programmatic override (0 = use the environment default). */
unsigned jobsOverride = 0;

/**
 * The process-wide pool. Threads are created lazily on the first
 * parallel batch and live for the process lifetime; batches are
 * serialized (one at a time), which is all the sweep harnesses
 * need. A batch caps how many workers may join it, so
 * runJobs(n, fn, 4) uses at most 4 threads even on a 64-way host.
 */
class WorkerPool
{
  public:
    static WorkerPool &
    get()
    {
        static WorkerPool pool;
        return pool;
    }

    unsigned size() const
    {
        return static_cast<unsigned>(workers.size());
    }

    void
    run(size_t n, const std::function<void(size_t)> &fn,
        unsigned max_workers)
    {
        // One batch at a time; concurrent submitters queue here.
        std::lock_guard<std::mutex> submit(submitMutex);

        Batch b;
        b.fn = &fn;
        b.n = n;
        b.remaining.store(n, std::memory_order_relaxed);

        {
            std::lock_guard<std::mutex> lk(m);
            batch = &b;
            batchCap = max_workers;
            ++batchSeq;
        }
        wake.notify_all();

        std::unique_lock<std::mutex> lk(m);
        done.wait(lk, [&] {
            return b.remaining.load(std::memory_order_acquire) == 0 &&
                activeWorkers == 0;
        });
        batch = nullptr;
    }

    ~WorkerPool()
    {
        {
            std::lock_guard<std::mutex> lk(m);
            shutdown = true;
        }
        wake.notify_all();
        for (auto &t : workers)
            t.join();
    }

  private:
    WorkerPool()
    {
        unsigned hw = std::thread::hardware_concurrency();
        unsigned n = hw ? hw : 1;
        // The pool itself is sized to the machine; SHELFSIM_JOBS
        // caps how many workers join any given batch, so a smaller
        // setting needs no pool rebuild.
        unsigned env = jobsFromEnv();
        if (env > n)
            n = env;
        workers.reserve(n);
        for (unsigned i = 0; i < n; ++i)
            workers.emplace_back([this] { workerLoop(); });
    }

    struct Batch
    {
        const std::function<void(size_t)> *fn = nullptr;
        size_t n = 0;
        std::atomic<size_t> next{0};
        std::atomic<size_t> remaining{0};
    };

    void
    workerLoop()
    {
        tlsInsideWorker = true;
        uint64_t seen = 0;
        std::unique_lock<std::mutex> lk(m);
        for (;;) {
            wake.wait(lk, [&] {
                return shutdown || (batch && batchSeq != seen);
            });
            if (shutdown)
                return;
            seen = batchSeq;
            if (activeWorkers >= batchCap)
                continue; // batch already fully staffed
            ++activeWorkers;
            Batch *b = batch;
            lk.unlock();

            for (;;) {
                size_t i =
                    b->next.fetch_add(1, std::memory_order_relaxed);
                if (i >= b->n)
                    break;
                (*b->fn)(i);
                b->remaining.fetch_sub(1,
                                       std::memory_order_release);
            }

            lk.lock();
            --activeWorkers;
            if (b->remaining.load(std::memory_order_acquire) == 0 &&
                activeWorkers == 0) {
                done.notify_all();
            }
        }
    }

    std::mutex submitMutex;
    std::mutex m;
    std::condition_variable wake;
    std::condition_variable done;
    std::vector<std::thread> workers;
    Batch *batch = nullptr;
    unsigned batchCap = 0;
    unsigned activeWorkers = 0;
    uint64_t batchSeq = 0;
    bool shutdown = false;
};

} // namespace

unsigned
defaultJobs()
{
    if (jobsOverride)
        return jobsOverride;
    static const unsigned env = jobsFromEnv();
    return env;
}

void
setDefaultJobs(unsigned jobs)
{
    jobsOverride = jobs;
}

bool
insideWorker()
{
    return tlsInsideWorker;
}

void
runJobs(size_t n, const std::function<void(size_t)> &fn,
        unsigned jobs)
{
    if (n == 0)
        return;
    if (jobs == 0)
        jobs = defaultJobs();

    // Serial path: one job requested, a single-item batch, or a
    // nested call from inside a worker (the pool only runs one
    // batch at a time, so re-entering it would deadlock).
    if (jobs <= 1 || n == 1 || tlsInsideWorker) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Touch the lazily built profile table from a single thread so
    // workers only ever read it (see the header's determinism note).
    spec2006Profiles();

    WorkerPool::get().run(n, fn, jobs);
}

size_t
runJobsCancellable(size_t n, const std::function<bool(size_t)> &fn,
                   unsigned jobs)
{
    // Implemented over runJobs(): cancelled indices still pass
    // through the pool's index distribution but return immediately,
    // which costs one atomic load each and keeps the pool's
    // single-batch machinery untouched.
    std::atomic<bool> stop{false};
    std::atomic<size_t> started{0};
    runJobs(n, [&](size_t i) {
        if (stop.load(std::memory_order_acquire))
            return;
        started.fetch_add(1, std::memory_order_relaxed);
        if (!fn(i))
            stop.store(true, std::memory_order_release);
    }, jobs);
    return started.load(std::memory_order_relaxed);
}

} // namespace shelf
