#include "sim/fabric.hh"

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "sim/journal.hh"
#include "sim/launcher.hh"

namespace shelf
{

namespace
{

double
envDouble(const char *name, double dflt)
{
    const char *s = std::getenv(name);
    if (!s)
        return dflt;
    double v;
    fatal_if(!tryParseDouble(s, v) || v < 0, "bad %s '%s'", name, s);
    return v;
}

uint64_t
envU64(const char *name, uint64_t dflt)
{
    const char *s = std::getenv(name);
    if (!s)
        return dflt;
    uint64_t v;
    fatal_if(!tryParseU64(s, v), "bad %s '%s'", name, s);
    return v;
}

bool
envFlag(const char *name)
{
    const char *s = std::getenv(name);
    return s && *s && std::string(s) != "0";
}

double
unixNow()
{
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

double
elapsedSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Same resolution the supervisor uses for repro artifacts. */
std::string
selfBinary()
{
    char buf[4096];
    ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "/proc/self/exe";
    buf[n] = '\0';
    return buf;
}

} // namespace

bool
FabricOptions::parseNodeList(const std::string &s,
                             std::vector<FabricNode> &out,
                             std::string &err)
{
    out.clear();
    std::set<std::string> names;
    // Split manually so empty entries ("a=x,", ",a=x", "a=x,,b=y")
    // are rejected instead of silently dropped — a typo'd node list
    // quietly running on fewer nodes would be a debugging trap.
    std::vector<std::string> parts;
    size_t start = 0;
    for (;;) {
        size_t comma = s.find(',', start);
        parts.push_back(s.substr(start, comma - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    for (const std::string &part : parts) {
        if (part.empty()) {
            err = "empty node entry";
            return false;
        }
        auto eq = part.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 >= part.size()) {
            err = csprintf("'%s' is not name=socket", part.c_str());
            return false;
        }
        FabricNode node;
        node.name = part.substr(0, eq);
        node.socketPath = part.substr(eq + 1);
        // Node names key shard journal files and lease records;
        // duplicates would silently interleave two daemons into one
        // shard.
        if (!names.insert(node.name).second) {
            err = csprintf("duplicate node name '%s'",
                           node.name.c_str());
            return false;
        }
        out.push_back(std::move(node));
    }
    if (out.empty()) {
        err = "empty node list";
        return false;
    }
    return true;
}

FabricOptions
FabricOptions::fromEnv()
{
    FabricOptions opt;
    if (const char *s = std::getenv("SHELFSIM_NODES")) {
        if (*s) {
            std::string err;
            fatal_if(!parseNodeList(s, opt.nodes, err),
                     "bad SHELFSIM_NODES: %s", err.c_str());
        }
    }
    opt.leaseSeconds = envDouble("SHELFSIM_LEASE", opt.leaseSeconds);
    opt.nodeRetries = static_cast<unsigned>(
        envU64("SHELFSIM_NODE_RETRIES", opt.nodeRetries));
    opt.heartbeatSeconds =
        envDouble("SHELFSIM_HEARTBEAT", opt.heartbeatSeconds);
    opt.backoffSeconds =
        envDouble("SHELFSIM_BACKOFF", opt.backoffSeconds);
    if (const char *s = std::getenv("SHELFSIM_JOURNAL"))
        opt.journalPath = s;
    opt.resume = envFlag("SHELFSIM_RESUME");
    fatal_if(opt.resume && opt.journalPath.empty(),
             "SHELFSIM_RESUME needs SHELFSIM_JOURNAL");
    return opt;
}

std::string
FabricCoordinator::shardPath(const std::string &journalPath,
                             const std::string &nodeName)
{
    return journalPath + "." + nodeName;
}

/** Everything the node threads share, guarded by m. */
struct FabricCoordinator::Shared
{
    std::mutex m;
    std::condition_variable cv; ///< queue/termination changes

    std::vector<std::string> keys;
    std::deque<size_t> queue; ///< indices awaiting a node
    std::vector<JobOutcome> outcomes;
    /** Nodes whose lease on job i expired (distinct-node count
     * drives job quarantine). */
    std::vector<std::set<size_t>> expiredOn;
    size_t remaining = 0; ///< jobs without a final outcome
    size_t aliveNodes = 0;
    uint64_t leaseSeq = 0;
    std::string workerBinary; ///< for repro artifacts

    /** Serializes progress callbacks: node threads finish jobs
     * concurrently, but callers get one invocation at a time. */
    std::mutex progressM;

    /** Per-node shard writers (only node i appends to shard i, but
     * JournalWriter is locked anyway). */
    std::vector<std::unique_ptr<JournalWriter>> shards;
};

FabricCoordinator::FabricCoordinator(FabricOptions opt_)
    : opt(std::move(opt_))
{
    fatal_if(opt.nodes.empty(), "fabric needs at least one node");
    launchers.resize(opt.nodes.size());
    for (size_t n = 0; n < opt.nodes.size(); ++n) {
        launchers[n] = std::make_shared<RemoteServeLauncher>(
            opt.nodes[n].name, opt.nodes[n].socketPath);
    }
}

void
FabricCoordinator::setLauncher(size_t index,
                               std::shared_ptr<WorkerLauncher> l)
{
    launchers.at(index) = std::move(l);
}

void
FabricCoordinator::nodeLoop(Shared &sh, size_t nodeIdx)
{
    WorkerLauncher &launcher = *launchers[nodeIdx];
    NodeReport &rep = reports[nodeIdx];
    JournalWriter *shard = sh.shards[nodeIdx].get();
    const std::string &nodeName = opt.nodes[nodeIdx].name;
    uint64_t jitterSeed = fnv1a64(nodeName);
    unsigned consecFailures = 0;
    bool needHealthCheck = true; // gate the very first claim too

    auto finishJob = [&](size_t i, JobOutcome &&oc,
                         std::unique_lock<std::mutex> &lk) {
        if (shard) {
            shard->append(
                journalLine(sh.keys[i], oc, nodeName));
        }
        sh.outcomes[i] = std::move(oc);
        --sh.remaining;
        if (sh.remaining == 0)
            sh.cv.notify_all();
        JobOutcome copy = sh.outcomes[i];
        lk.unlock();
        if (progress) {
            std::lock_guard<std::mutex> plk(sh.progressM);
            progress(i, copy);
        }
    };

    auto nodeDied = [&](std::unique_lock<std::mutex> &lk) {
        rep.dead = true;
        --sh.aliveNodes;
        warn("fabric: node %s retired after %u consecutive "
             "transport failures", nodeName.c_str(),
             consecFailures);
        if (sh.aliveNodes == 0) {
            // Last one out quarantines whatever is still queued —
            // a sweep with no fleet left must fail loudly per job,
            // not hang.
            while (!sh.queue.empty()) {
                size_t i = sh.queue.front();
                sh.queue.pop_front();
                JobOutcome oc;
                oc.status = JobOutcome::Status::Quarantined;
                oc.stderrTail = csprintf(
                    "no live fabric nodes (%zu retired); job "
                    "never completed", opt.nodes.size());
                oc.repro = csprintf("%s --worker '%s'",
                                    sh.workerBinary.c_str(),
                                    sh.keys[i].c_str());
                finishJob(i, std::move(oc), lk);
                lk.lock();
            }
        }
        sh.cv.notify_all();
    };

    for (;;) {
        size_t i;
        {
            std::unique_lock<std::mutex> lk(sh.m);
            sh.cv.wait(lk, [&] {
                return !sh.queue.empty() || sh.remaining == 0;
            });
            if (sh.remaining == 0)
                return;
            i = sh.queue.front();
            sh.queue.pop_front();
        }

        // Health gate: a node that just failed (or was never
        // contacted) must prove liveness before it gets work, so a
        // dead daemon costs one bounded ping, not a full lease.
        if (needHealthCheck) {
            std::string herr;
            if (!launcher.healthy(opt.heartbeatSeconds, herr)) {
                ++rep.transportFailures;
                ++consecFailures;
                std::unique_lock<std::mutex> lk(sh.m);
                sh.queue.push_front(i);
                sh.cv.notify_one();
                if (consecFailures > opt.nodeRetries) {
                    nodeDied(lk);
                    return;
                }
                lk.unlock();
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(
                        SweepSupervisor::backoffDelayJittered(
                            consecFailures, opt.backoffSeconds,
                            jitterSeed)));
                continue;
            }
            needHealthCheck = false;
        }

        // Durable lease: if this process (or the node) dies right
        // now, the journal shows job i in flight at this node with
        // a deadline — and no finished record, so resume re-runs
        // it.
        if (shard) {
            validate::LeaseRecord lease;
            lease.key = sh.keys[i];
            lease.node = nodeName;
            {
                std::lock_guard<std::mutex> lk(sh.m);
                lease.seq = ++sh.leaseSeq;
            }
            lease.issuedUnix = unixNow();
            lease.deadlineUnix = lease.issuedUnix + opt.leaseSeconds;
            shard->append(lease.toJson());
        }

        auto t0 = std::chrono::steady_clock::now();
        LaunchResult r =
            launcher.launch(sh.keys[i], opt.leaseSeconds);

        if (r.transportFailure) {
            ++rep.transportFailures;
            ++consecFailures;
            needHealthCheck = true;
            warn("fabric: node %s lost job %zu: %s",
                 nodeName.c_str(), i, r.error.c_str());
            std::unique_lock<std::mutex> lk(sh.m);
            bool jobExhausted = false;
            if (r.timedOut) {
                ++rep.leaseExpiries;
                sh.expiredOn[i].insert(nodeIdx);
                jobExhausted =
                    sh.expiredOn[i].size() > opt.jobRetries;
            }
            if (jobExhausted) {
                // The job froze jobRetries + 1 distinct nodes: that
                // is the job hanging, not the fleet failing. Without
                // this, one poisonous cell would retire every node
                // it touches and take the sweep down.
                JobOutcome oc;
                oc.status = JobOutcome::Status::Quarantined;
                oc.timedOut = true;
                oc.attempts = static_cast<unsigned>(
                    sh.expiredOn[i].size());
                oc.wallSeconds = elapsedSince(t0);
                oc.stderrTail = csprintf(
                    "lease expired on %zu distinct nodes",
                    sh.expiredOn[i].size());
                oc.repro = csprintf("%s --worker '%s'",
                                    sh.workerBinary.c_str(),
                                    sh.keys[i].c_str());
                finishJob(i, std::move(oc), lk);
                lk.lock();
            } else {
                // Reclaim the lease: back on the shared queue,
                // where any surviving node steals it.
                sh.queue.push_front(i);
                sh.cv.notify_one();
            }
            if (consecFailures > opt.nodeRetries) {
                nodeDied(lk);
                return;
            }
            lk.unlock();
            std::this_thread::sleep_for(
                std::chrono::duration<double>(
                    SweepSupervisor::backoffDelayJittered(
                        consecFailures, opt.backoffSeconds,
                        jitterSeed)));
            continue;
        }

        consecFailures = 0;
        JobOutcome oc;
        oc.attempts = 1;
        oc.wallSeconds = elapsedSince(t0);
        if (r.ok) {
            oc.status = JobOutcome::Status::Ok;
            oc.result = SystemResult::fromJson(r.resultJson);
        } else {
            // The node's own supervisor already retried and
            // quarantined the job; its verdict is final here.
            oc.status = JobOutcome::Status::Quarantined;
            oc.timedOut = r.timedOut;
            oc.exitCode = r.exitCode;
            oc.termSignal = r.termSignal;
            oc.stderrTail = r.stderrTail.empty() ? r.error
                                                 : r.stderrTail;
            oc.repro = csprintf("%s --worker '%s'",
                                sh.workerBinary.c_str(),
                                sh.keys[i].c_str());
        }
        ++rep.jobsCompleted;
        std::unique_lock<std::mutex> lk(sh.m);
        finishJob(i, std::move(oc), lk);
    }
}

std::vector<JobOutcome>
FabricCoordinator::run(const std::vector<validate::SweepJobSpec> &jobs)
{
    Shared sh;
    sh.outcomes.assign(jobs.size(), JobOutcome());
    sh.expiredOn.assign(jobs.size(), {});
    sh.workerBinary = selfBinary();
    sh.keys.reserve(jobs.size());
    for (const auto &j : jobs)
        sh.keys.push_back(j.toJson());

    reports.assign(opt.nodes.size(), NodeReport());
    for (size_t n = 0; n < opt.nodes.size(); ++n)
        reports[n].name = opt.nodes[n].name;

    // Resume set: the merged journal if present, then every shard,
    // last-wins — so a sweep killed before journal-merge ran still
    // resumes from its shards alone.
    std::map<std::string, JournalRecord> done;
    if (opt.resume && !opt.journalPath.empty()) {
        done = loadJournal(opt.journalPath);
        for (const auto &node : opt.nodes) {
            for (auto &kv :
                 loadJournal(shardPath(opt.journalPath,
                                       node.name))) {
                done[kv.first] = std::move(kv.second);
            }
        }
    }

    std::vector<size_t> replayed;
    for (size_t i = 0; i < jobs.size(); ++i) {
        auto it = done.find(sh.keys[i]);
        if (it != done.end() &&
            outcomeFromJournal(it->second, sh.outcomes[i])) {
            replayed.push_back(i);
            continue;
        }
        if (it != done.end()) {
            warn("journal: unreadable result for %s; re-running",
                 sh.keys[i].c_str());
            sh.outcomes[i] = JobOutcome();
        }
        sh.queue.push_back(i);
    }
    sh.remaining = sh.queue.size();
    sh.aliveNodes = opt.nodes.size();

    sh.shards.resize(opt.nodes.size());
    for (size_t n = 0; n < opt.nodes.size(); ++n) {
        sh.shards[n] = std::make_unique<JournalWriter>();
        if (!opt.journalPath.empty()) {
            std::string err;
            fatal_if(!sh.shards[n]->open(
                         shardPath(opt.journalPath,
                                   opt.nodes[n].name), &err),
                     "%s", err.c_str());
        }
    }

    for (size_t i : replayed) {
        if (progress)
            progress(i, sh.outcomes[i]);
    }

    std::vector<std::thread> threads;
    threads.reserve(opt.nodes.size());
    for (size_t n = 0; n < opt.nodes.size(); ++n)
        threads.emplace_back([this, &sh, n] { nodeLoop(sh, n); });
    for (auto &t : threads)
        t.join();

    return std::move(sh.outcomes);
}

} // namespace shelf
