/**
 * @file
 * Top-level simulation driver: assembles workload traces, the cache
 * hierarchy, and a core from a configuration; runs warmup and a
 * measured interval; and collects one self-contained result record.
 * This is the primary entry point of the public API.
 */

#ifndef SHELFSIM_SIM_SYSTEM_HH
#define SHELFSIM_SIM_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "core/core.hh"
#include "energy/energy_model.hh"
#include "mem/hierarchy.hh"
#include "workload/generator.hh"

namespace shelf
{

struct SystemConfig
{
    CoreParams core;
    HierarchyParams mem;

    /** One benchmark profile name per hardware thread. */
    std::vector<std::string> benchmarks;

    uint64_t seed = 1;

    /** Cycles to run before statistics are reset. */
    Cycle warmupCycles = 4000;
    /** Measured cycles. */
    Cycle measureCycles = 16000;

    /** Trace length per thread; 0 = sized automatically from the
     * cycle budget (traces wrap if exhausted). */
    size_t traceLength = 0;

    /**
     * Externally supplied traces (e.g. from trace_io files). When
     * non-empty, one entry per thread. A thread with a non-empty
     * trace replays it (its benchmarks entry is then only a label);
     * a thread with an empty entry still generates from its
     * benchmarks profile, so trace-backed and generated threads can
     * share a core.
     */
    std::vector<Trace> externalTraces;
};

struct ThreadResult
{
    std::string benchmark;
    uint64_t instructions = 0;
    double ipc = 0;
    double inSeqFrac = 0;
};

struct SystemResult
{
    std::string configName;
    Cycle cycles = 0;
    std::vector<ThreadResult> threads;
    double totalIpc = 0;

    double inSeqFrac = 0;        ///< all threads combined
    double shelfSteerFrac = 0;   ///< instructions steered to shelf
    /** Practical-vs-oracle steering disagreement rate; only
     * populated when CoreParams::shadowOracle is set. */
    double missteerFrac = 0;
    double branchMispredictRate = 0;
    double l1dMissRate = 0;
    uint64_t squashes = 0;
    uint64_t memOrderSquashes = 0;

    /** Weighted series-length distributions (Figure 2). */
    stats::Histogram inSeqSeries;
    stats::Histogram reorderedSeries;

    EnergyReport energy;
    EventCounts events;

    /** Per-thread IPC vector (for STP computations). */
    std::vector<double> ipcVector() const;

    /**
     * Machine-readable export of the whole result (histograms are
     * not serialized). @p doublePrecision as in JsonWriter: the
     * default is the human-facing form; supervised sweep workers
     * and journal records use JsonWriter::kFullPrecision so every
     * double survives the text round trip bit-exactly.
     */
    std::string toJson(int doublePrecision = 10) const;

    /**
     * Rebuild a result from toJson() output (the in-memory
     * histograms, which toJson does not carry, come back empty).
     * fatal() on malformed or unknown-schema input.
     */
    static SystemResult fromJson(const std::string &json);
};

class System
{
  public:
    explicit System(SystemConfig config);
    ~System();

    /** Run warmup + measurement and return the collected result. */
    SystemResult run();

    /**
     * Text report of every statistic the system tracks (core,
     * caches, predictors, steering, energy), in the classic
     * one-line-per-stat simulator format. Call after run().
     */
    std::string statsReport() const;

    /** Access the live core (valid between construction and run()
     * completion; used by integration tests). */
    Core &core() { return *coreModel; }
    MemHierarchy &memory() { return *hier; }

  private:
    SystemConfig cfg;
    std::vector<Trace> traces;
    std::unique_ptr<MemHierarchy> hier;
    std::unique_ptr<Core> coreModel;
};

} // namespace shelf

#endif // SHELFSIM_SIM_SYSTEM_HH
