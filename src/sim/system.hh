/**
 * @file
 * Top-level simulation driver: assembles workload traces, the cache
 * hierarchy, and one or more cores from a configuration; runs warmup
 * and a measured interval; and collects one self-contained result
 * record. This is the primary entry point of the public API.
 *
 * Multi-core mode: with numCores > 1 the configured CoreParams
 * describes each core (threads = per-core SMT width) and the
 * benchmark list names every global thread; a thread-to-core
 * allocation policy (sim/allocation.hh) decides placement. Each core
 * gets private L1 caches; all cores share the L2 and memory, and
 * advance in cycle-lockstep, each keeping its own quiescent-cycle
 * skipping. A numCores == 1 system is byte-identical — run loop,
 * result, and stats report — to the classic single-core path.
 */

#ifndef SHELFSIM_SIM_SYSTEM_HH
#define SHELFSIM_SIM_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "core/core.hh"
#include "energy/energy_model.hh"
#include "mem/hierarchy.hh"
#include "workload/generator.hh"

namespace shelf
{

struct SystemConfig
{
    CoreParams core;
    HierarchyParams mem;

    /** One benchmark profile name per global hardware thread. */
    std::vector<std::string> benchmarks;

    uint64_t seed = 1;

    /** Cycles to run before statistics are reset. */
    Cycle warmupCycles = 4000;
    /** Measured cycles. */
    Cycle measureCycles = 16000;

    /** Trace length per thread; 0 = sized automatically from the
     * cycle budget (traces wrap if exhausted). */
    size_t traceLength = 0;

    /**
     * Number of cores sharing the memory hierarchy. `core` describes
     * each core; with one core the benchmark count must equal
     * core.threads exactly (the classic mode), with more it may be
     * anything in [1, numCores * core.threads] and each core's
     * window partitions shrink to its allocated thread count.
     */
    unsigned numCores = 1;

    /** Thread-to-core allocation policy (sim/allocation.hh):
     * round-robin, fill-first, classify, or dynamic. Only consulted
     * when numCores > 1. */
    std::string allocation = "round-robin";

    /**
     * Externally supplied traces (e.g. from trace_io files). When
     * non-empty, one entry per global thread. A thread with a
     * non-empty trace replays it (its benchmarks entry is then only
     * a label); a thread with an empty entry still generates from
     * its benchmarks profile, so trace-backed and generated threads
     * can share a core.
     */
    std::vector<Trace> externalTraces;
};

struct ThreadResult
{
    std::string benchmark;
    uint64_t instructions = 0;
    double ipc = 0;
    double inSeqFrac = 0;
    /** Core the thread ran on (always 0 in single-core mode). */
    unsigned core = 0;
};

struct SystemResult
{
    std::string configName;
    Cycle cycles = 0;
    std::vector<ThreadResult> threads;
    double totalIpc = 0;

    double inSeqFrac = 0;        ///< all threads combined
    double shelfSteerFrac = 0;   ///< instructions steered to shelf
    /** Practical-vs-oracle steering disagreement rate; only
     * populated when CoreParams::shadowOracle is set. */
    double missteerFrac = 0;
    double branchMispredictRate = 0;
    double l1dMissRate = 0;
    uint64_t squashes = 0;
    uint64_t memOrderSquashes = 0;

    /** Core count the system ran with, and (when > 1) the
     * allocation policy used. */
    unsigned numCores = 1;
    std::string allocation;

    EnergyReport energy;
    EventCounts events;

    /**
     * @name Weighted series-length distributions (Figure 2).
     * Populated only on fresh in-process results. toJson() does not
     * carry histograms, so on a result rehydrated from JSON (result
     * cache hit, isolated worker, journal replay) these accessors
     * fatal() instead of silently returning empty distributions —
     * check hasHistograms() first if rehydration is possible.
     * @{
     */
    const stats::Histogram &inSeqSeries() const;
    const stats::Histogram &reorderedSeries() const;
    bool hasHistograms() const { return !rehydrated; }
    /** Install fresh in-process series (System::run). */
    void setSeries(stats::Histogram in_seq,
                   stats::Histogram reordered);
    /** @} */

    /** Per-thread IPC vector (for STP computations). */
    std::vector<double> ipcVector() const;

    /**
     * Machine-readable export of the whole result (histograms are
     * not serialized). @p doublePrecision as in JsonWriter: the
     * default is the human-facing form; supervised sweep workers
     * and journal records use JsonWriter::kFullPrecision so every
     * double survives the text round trip bit-exactly.
     */
    std::string toJson(int doublePrecision = 10) const;

    /**
     * Rebuild a result from toJson() output. The histograms, which
     * toJson does not carry, are marked rehydrated: reading them
     * through the accessors fatal()s. fatal() on malformed or
     * unknown-schema input.
     */
    static SystemResult fromJson(const std::string &json);

  private:
    stats::Histogram inSeqSeriesHist;
    stats::Histogram reorderedSeriesHist;
    /** Set by fromJson(): the histograms were lost to the JSON
     * round trip and must not be read. */
    bool rehydrated = false;
};

class System
{
  public:
    explicit System(SystemConfig config);
    ~System();

    /** Run warmup + measurement and return the collected result. */
    SystemResult run();

    /**
     * Text report of every statistic the system tracks (core,
     * caches, predictors, steering, energy), in the classic
     * one-line-per-stat simulator format. Call after run().
     */
    std::string statsReport() const;

    /** Access a live core (valid between construction and run()
     * completion; used by integration tests). An allocation can
     * leave a core empty — check hasCore() before touching cores
     * other than 0 in multi-core mode. */
    Core &core(unsigned idx = 0) { return *cores.at(idx); }
    bool hasCore(unsigned idx) const
    {
        return idx < cores.size() && cores[idx] != nullptr;
    }
    unsigned numCores() const { return cfg.numCores; }
    /** Core @p idx's hierarchy: private L1s; the L2 is private in
     * single-core mode and shared otherwise. */
    MemHierarchy &memory(unsigned idx = 0) { return *hiers.at(idx); }
    /** The L2 every core misses into (the single core's own L2 in
     * single-core mode). */
    Cache &sharedL2Cache()
    {
        return sharedL2 ? *sharedL2 : hiers.at(0)->l2();
    }

    /** Global thread -> core placement chosen by the allocation
     * policy (after run() with the dynamic policy: the final
     * placement). */
    const std::vector<unsigned> &threadAssignment() const
    {
        return assignment;
    }

  private:
    /** (Re)build the cores from the current assignment. */
    void buildCores();
    /** Functional warmup + predictor reset + timed warmup. */
    void warmupPhase();
    /** Advance every core by @p cycles in cycle-lockstep. */
    void runAll(Cycle cycles);
    /** Multi-core variant of statsReport(). */
    std::string multiCoreStatsReport() const;

    SystemConfig cfg;
    std::vector<Trace> traces;
    /** Shared L2 backing every core's private L1s; null in
     * single-core mode (the lone hierarchy then owns its L2). */
    std::unique_ptr<Cache> sharedL2;
    /** One hierarchy (private L1I/L1D) per core slot. */
    std::vector<std::unique_ptr<MemHierarchy>> hiers;
    /** Global thread -> core index. */
    std::vector<unsigned> assignment;
    /** Core index -> global threads, ascending (a thread's position
     * is its core-local ThreadID). */
    std::vector<std::vector<unsigned>> coreThreads;
    /** Global thread -> core-local ThreadID. */
    std::vector<unsigned> localTid;
    /** One entry per core; null where the allocation left a core
     * without threads. */
    std::vector<std::unique_ptr<Core>> cores;
};

} // namespace shelf

#endif // SHELFSIM_SIM_SYSTEM_HH
