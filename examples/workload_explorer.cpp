/**
 * @file
 * Characterize the 28 synthetic SPEC-CPU2006-like benchmarks: the
 * statically measured trace properties (instruction mix, dependence
 * distance, footprint) and the dynamically measured single-thread
 * behaviour on the baseline core (IPC, cache miss rate, branch
 * mispredict rate, in-sequence fraction).
 */

#include <cstdio>

#include "base/table.hh"
#include "sim/experiment.hh"
#include "workload/characterize.hh"
#include "workload/spec2006.hh"

using namespace shelf;

int
main()
{
    SimControls ctl = SimControls::fromEnv();

    TextTable t({ "benchmark", "load", "store", "branch", "depdist",
                  "footprint", "ST IPC", "L1D miss", "br-miss",
                  "in-seq" });

    for (const auto &prof : spec2006Profiles()) {
        TraceGenerator gen(prof, 1, 0);
        TraceCharacter c = characterize(gen.generate(30000));
        SystemResult res = runSingle(baseCore64(4), prof.name, ctl);
        t.addRow({ prof.name, TextTable::pct(c.loadFrac, 0),
                   TextTable::pct(c.storeFrac, 0),
                   TextTable::pct(c.branchFrac, 0),
                   TextTable::num(c.meanDepDistance, 1),
                   TextTable::num(c.uniqueBlocksKB, 0) + "KB",
                   TextTable::num(res.threads[0].ipc, 2),
                   TextTable::pct(res.l1dMissRate, 0),
                   TextTable::pct(res.branchMispredictRate, 1),
                   TextTable::pct(res.inSeqFrac, 0) });
        fprintf(stderr, ".");
    }
    fprintf(stderr, "\n");
    printf("%s", t.render().c_str());
    return 0;
}
