/**
 * @file
 * The motivation experiment of Hily & Seznec (HPCA 1999), which the
 * paper builds on: as SMT thread count grows, the throughput of an
 * in-order core approaches that of an out-of-order core, so paying
 * for full OOO hardware per instruction becomes wasteful. We model
 * the in-order core as the shelf machine with always-shelf steering.
 */

#include <cstdio>

#include "base/table.hh"
#include "metrics/throughput.hh"
#include "sim/experiment.hh"

using namespace shelf;

int
main()
{
    SimControls ctl = SimControls::fromEnv();

    printf("In-order vs out-of-order throughput as threads scale\n");
    printf("(INO modelled as always-shelf steering)\n\n");

    TextTable t({ "threads", "OOO IPC", "INO IPC", "INO/OOO" });
    for (unsigned threads : { 1u, 2u, 4u, 8u }) {
        auto mixes = standardMixes(threads);
        std::vector<double> ooo_ipcs, ino_ipcs;
        size_t num = std::min<size_t>(mixes.size(), 10);
        for (size_t m = 0; m < num; ++m) {
            ooo_ipcs.push_back(
                runMix(baseCore64(threads), mixes[m], ctl).totalIpc);
            CoreParams ino = shelfCore(
                threads, true, SteerPolicyKind::AlwaysShelf);
            // Give the INO shelf the whole window budget.
            ino.shelfEntries = 64;
            ino_ipcs.push_back(runMix(ino, mixes[m], ctl).totalIpc);
        }
        double ooo = mean(ooo_ipcs);
        double ino = mean(ino_ipcs);
        t.addRow({ std::to_string(threads), TextTable::num(ooo, 3),
                   TextTable::num(ino, 3),
                   TextTable::pct(ino / ooo) });
        fprintf(stderr, ".");
    }
    fprintf(stderr, "\n");
    printf("%s\n", t.render().c_str());
    printf("Expected: the ratio climbs toward 1 as threads are "
           "added (TLP substitutes for OOO's ILP extraction).\n");
    return 0;
}
