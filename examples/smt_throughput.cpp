/**
 * @file
 * Compare system throughput (STP) of the baseline, shelf-augmented,
 * and doubled cores on a 4-thread mix — the paper's headline
 * experiment on a single workload, with per-thread detail.
 *
 * Usage: smt_throughput [bench1 bench2 bench3 bench4]
 */

#include <cstdio>

#include "base/table.hh"
#include "metrics/throughput.hh"
#include "sim/experiment.hh"
#include "workload/spec2006.hh"

using namespace shelf;

int
main(int argc, char **argv)
{
    std::vector<std::string> benchmarks = { "astar", "mcf",
                                            "perlbench",
                                            "xalancbmk" };
    if (argc == 5)
        benchmarks = { argv[1], argv[2], argv[3], argv[4] };

    SimControls ctl = SimControls::fromEnv();
    WorkloadMix mix;
    for (const auto &name : benchmarks)
        mix.benchmarks.push_back(spec2006Index(name));

    printf("Workload: %s\n\n", mix.name().c_str());

    STReference ref(ctl);
    TextTable t({ "config", "STP", "total IPC", "in-seq",
                  "shelf-steer", "EDP/inst" });
    double base_stp = 0;
    for (const CoreParams &cfg :
         { baseCore64(4), shelfCore(4, false), shelfCore(4, true),
           baseCore128(4) }) {
        SystemResult res = runMix(cfg, mix, ctl);
        double s = stpOf(res, mix, ref);
        if (cfg.name == "base64")
            base_stp = s;
        t.addRow({ cfg.name, TextTable::num(s, 3),
                   TextTable::num(res.totalIpc, 3),
                   TextTable::pct(res.inSeqFrac),
                   TextTable::pct(res.shelfSteerFrac),
                   TextTable::num(res.energy.edp, 1) });
        printf("  %-16s per-thread IPC:", cfg.name.c_str());
        for (const auto &th : res.threads)
            printf(" %s=%.3f", th.benchmark.c_str(), th.ipc);
        printf("\n");
    }
    printf("\n%s\n", t.render().c_str());
    printf("Baseline STP %.3f; improvements are relative to it.\n",
           base_stp);
    return 0;
}
