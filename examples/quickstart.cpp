/**
 * @file
 * Quickstart: build a 4-thread SMT system, run the baseline core and
 * the shelf-augmented core on the same workload mix, and print the
 * headline statistics. This is the smallest end-to-end use of the
 * shelfsim public API.
 */

#include <cstdio>

#include "core/params.hh"
#include "sim/system.hh"

using namespace shelf;

namespace
{

void
report(const SystemResult &res)
{
    printf("config %-18s cycles %-8llu IPC %.3f  in-seq %4.1f%%  "
           "shelf-steer %4.1f%%\n",
           res.configName.c_str(),
           static_cast<unsigned long long>(res.cycles), res.totalIpc,
           res.inSeqFrac * 100.0, res.shelfSteerFrac * 100.0);
    for (const auto &t : res.threads) {
        printf("  %-12s ipc %.3f  insts %-7llu in-seq %4.1f%%\n",
               t.benchmark.c_str(), t.ipc,
               static_cast<unsigned long long>(t.instructions),
               t.inSeqFrac * 100.0);
    }
    printf("  energy/inst %.1f pJ, EDP %.1f, squashes %llu "
           "(mem-order %llu), L1D miss %.1f%%, br-mispred %.2f%%\n",
           res.energy.energyPerInstPJ, res.energy.edp,
           static_cast<unsigned long long>(res.squashes),
           static_cast<unsigned long long>(res.memOrderSquashes),
           res.l1dMissRate * 100.0,
           res.branchMispredictRate * 100.0);
}

} // namespace

int
main()
{
    SystemConfig cfg;
    cfg.benchmarks = { "hmmer", "mcf", "gcc", "milc" };
    cfg.warmupCycles = 3000;
    cfg.measureCycles = 12000;

    // Baseline: 64-entry ROB, 32-entry IQ/LQ/SQ, no shelf.
    cfg.core = baseCore64(4);
    report(System(cfg).run());

    // Same core plus a 64-entry shelf with practical steering.
    cfg.core = shelfCore(4, /*optimistic=*/true);
    report(System(cfg).run());

    return 0;
}
