/**
 * @file
 * Study the dispatch steering policies on one workload: always-IQ
 * (baseline), always-shelf (in-order-like), practical (RCT+PLT),
 * practical with a shadow oracle (measures mis-steering), and the
 * greedy oracle.
 */

#include <cstdio>

#include "base/table.hh"
#include "sim/experiment.hh"
#include "workload/spec2006.hh"

using namespace shelf;

int
main()
{
    SimControls ctl = SimControls::fromEnv();
    WorkloadMix mix;
    for (const char *name : { "gcc", "hmmer", "milc", "sjeng" })
        mix.benchmarks.push_back(spec2006Index(name));
    printf("Workload: %s\n\n", mix.name().c_str());

    struct Case
    {
        const char *label;
        CoreParams params;
    };
    CoreParams shadow = shelfCore(4, true);
    shadow.shadowOracle = true;
    std::vector<Case> cases = {
        { "baseline (no shelf)", baseCore64(4) },
        { "always-shelf", shelfCore(4, true,
                                    SteerPolicyKind::AlwaysShelf) },
        { "practical", shelfCore(4, true) },
        { "practical+shadow", shadow },
        { "oracle", shelfCore(4, true, SteerPolicyKind::Oracle) },
    };

    TextTable t({ "policy", "IPC", "shelf-steer", "in-seq",
                  "missteer vs oracle" });
    for (const auto &c : cases) {
        SystemResult res = runMix(c.params, mix, ctl);
        t.addRow({ c.label, TextTable::num(res.totalIpc, 3),
                   TextTable::pct(res.shelfSteerFrac),
                   TextTable::pct(res.inSeqFrac),
                   c.params.shadowOracle
                       ? TextTable::pct(res.missteerFrac)
                       : std::string("-") });
    }
    printf("%s\n", t.render().c_str());
    printf("always-shelf approximates an in-order core; the paper "
           "reports ~16%% of instructions steered differently by the "
           "practical mechanism than by the oracle.\n");
    return 0;
}
