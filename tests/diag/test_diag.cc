/**
 * @file
 * Crash-diagnostics tests: the flight recorder's ring semantics,
 * the forward-progress watchdog (driven by the injected retirement
 * wedge), the structured core-state dump, and the blocking-structure
 * attribution of waitReason().
 */

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "base/json.hh"
#include "diag/crash_dump.hh"
#include "diag/flight_recorder.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"

using namespace shelf;

namespace
{

/** Small two-thread system config that runs in milliseconds. */
SystemConfig
tinyConfig()
{
    SystemConfig cfg;
    cfg.core = baseCore64(2);
    cfg.benchmarks = { "gcc", "mcf" };
    cfg.warmupCycles = 100;
    cfg.measureCycles = 400;
    cfg.seed = 1;
    return cfg;
}

SimControls
tinyControls()
{
    SimControls ctl;
    ctl.warmupCycles = 100;
    ctl.measureCycles = 400;
    ctl.seed = 1;
    return ctl;
}

WorkloadMix
tinyMix()
{
    WorkloadMix mix;
    mix.benchmarks = { 0, 1 };
    return mix;
}

} // namespace

TEST(FlightRecorder, DisabledWhenCapacityZero)
{
    diag::FlightRecorder fr(0);
    EXPECT_FALSE(fr.enabled());
    fr.record(1, diag::PipeEvent::Dispatch, 0, 1, false);
    EXPECT_EQ(fr.size(), 0u);
    EXPECT_EQ(fr.recorded(), 0u);
}

TEST(FlightRecorder, KeepsMostRecentAcrossWrap)
{
    diag::FlightRecorder fr(4);
    ASSERT_TRUE(fr.enabled());
    for (uint64_t i = 0; i < 10; ++i)
        fr.record(i, diag::PipeEvent::Issue, 0, i, false);
    EXPECT_EQ(fr.recorded(), 10u);
    ASSERT_EQ(fr.size(), 4u);
    auto evs = fr.events();
    ASSERT_EQ(evs.size(), 4u);
    // Oldest-to-newest: sequence numbers 6..9 survive.
    for (size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(evs[i].seq, 6 + i);
        EXPECT_EQ(evs[i].cycle, 6 + i);
    }
}

TEST(FlightRecorder, ExactlyFullIsNotWrapped)
{
    diag::FlightRecorder fr(3);
    for (uint64_t i = 0; i < 3; ++i)
        fr.record(i, diag::PipeEvent::Retire, 1, i, true);
    auto evs = fr.events();
    ASSERT_EQ(evs.size(), 3u);
    EXPECT_EQ(evs.front().seq, 0u);
    EXPECT_EQ(evs.back().seq, 2u);
}

TEST(FlightRecorder, DumpEmitsParseableRecords)
{
    diag::FlightRecorder fr(8);
    fr.record(5, diag::PipeEvent::Dispatch, 0, 1, false);
    fr.record(6, diag::PipeEvent::Issue, 1, 2, true);
    JsonWriter w;
    w.beginObject();
    w.beginArray("events");
    fr.dump(w);
    w.endArray();
    w.endObject();
    JsonValue doc = parseJson(w.str());
    const JsonValue *evs = doc.find("events");
    ASSERT_NE(evs, nullptr);
    ASSERT_TRUE(evs->isArray());
    ASSERT_EQ(evs->items.size(), 2u);
    EXPECT_EQ(evs->items[0].find("event")->raw, "dispatch");
    EXPECT_EQ(evs->items[1].find("event")->raw, "issue");
    EXPECT_EQ(evs->items[1].find("tid")->asU64(), 1u);
    EXPECT_TRUE(evs->items[1].find("shelf")->boolean);
}

TEST(Watchdog, FiresAtConfiguredBudgetWhenWedged)
{
    CoreParams core = baseCore64(2);
    core.watchdogCycles = 50;
    SimControls ctl = tinyControls();
    ctl.wedgeAtCycle = 50;
    // Retirement stops at cycle 50; no retirement for 50 further
    // cycles must panic with a structured report naming the wedge,
    // long before the 500-cycle budget ends.
    EXPECT_DEATH(runMix(core, tinyMix(), ctl),
                 "forward-progress watchdog.*50 cycles"
                 ".*retire-wedged");
}

TEST(Watchdog, DisabledWatchdogRunsWedgedCoreToCompletion)
{
    CoreParams core = baseCore64(2);
    core.watchdogCycles = 0;
    SimControls ctl = tinyControls();
    ctl.wedgeAtCycle = 50;
    SystemResult res = runMix(core, tinyMix(), ctl);
    // The wedge held: the measured interval retired nothing.
    EXPECT_EQ(res.totalIpc, 0.0);
}

TEST(Watchdog, HealthyRunNeverFires)
{
    CoreParams core = baseCore64(2);
    core.watchdogCycles = 50; // tight, but progress is steady
    SystemResult res = runMix(core, tinyMix(), tinyControls());
    EXPECT_GT(res.totalIpc, 0.0);
}

TEST(WaitReason, NamesInjectedWedge)
{
    SystemConfig cfg = tinyConfig();
    cfg.core.watchdogCycles = 0; // observe, don't panic
    System sys(cfg);
    sys.core().wedgeRetirementAt(50);
    sys.run();
    Core::WaitReason wr = sys.core().waitReason(0);
    EXPECT_EQ(wr.structure, "retire-wedged");
    EXPECT_NE(wr.detail.find("cycle 50"), std::string::npos);
}

TEST(CrashDump, BuildOnLiveCoreRoundTripsThroughParseJson)
{
    SystemConfig cfg = tinyConfig();
    System sys(cfg);
    sys.run();
    std::string json =
        diag::buildCrashDump(sys.core(), "unit test");
    JsonValue doc = parseJson(json);
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.find("reason")->raw, "unit test");

    // The flight recorder is on by default and a 500-cycle run
    // must have filled it.
    const JsonValue *fr = doc.find("flight_recorder");
    ASSERT_NE(fr, nullptr);
    ASSERT_TRUE(fr->isArray());
    EXPECT_FALSE(fr->items.empty());
    EXPECT_GT(doc.find("flight_recorder_total")->asU64(), 0u);

    // Every major structure is serialized.
    const JsonValue *st = doc.find("structures");
    ASSERT_NE(st, nullptr);
    for (const char *k : { "rob", "shelf", "iq", "lsq", "rename",
                           "scoreboard", "ssr", "steering" }) {
        EXPECT_NE(st->find(k), nullptr) << k;
    }

    // Invariant verdicts ride along, and a healthy core passes.
    EXPECT_TRUE(doc.find("invariantsOk")->boolean);
    ASSERT_NE(doc.find("invariants"), nullptr);
    EXPECT_FALSE(doc.find("invariants")->items.empty());

    // Per-thread wait attribution is present for both threads.
    const JsonValue *threads = doc.find("threads");
    ASSERT_NE(threads, nullptr);
    ASSERT_EQ(threads->items.size(), 2u);
    for (const auto &t : threads->items)
        EXPECT_FALSE(t.find("structure")->raw.empty());
}

TEST(CrashDump, WatchdogPanicWritesDumpNamingStuckStructure)
{
    std::string dir = ::testing::TempDir() + "shelfsim_diag_dump";
    std::string marker = dir + "/marker.txt";
    (void)remove(marker.c_str());
    (void)rmdir(dir.c_str());
    ASSERT_EQ(mkdir(dir.c_str(), 0755), 0);

    CoreParams core = baseCore64(2);
    core.watchdogCycles = 50;
    SimControls ctl = tinyControls();
    ctl.wedgeAtCycle = 50;

    // The death-test child enables dumps, wedges, and panics; the
    // dump file it writes survives into the parent, which announces
    // it with the line-anchored SHELFSIM-DUMP marker.
    EXPECT_DEATH(
        {
            diag::enableCrashDumps(dir);
            runMix(core, tinyMix(), ctl);
        },
        "SHELFSIM-DUMP ");

    // Find the dump the child left behind and check its contents.
    std::string dumpPath;
    if (DIR *d = opendir(dir.c_str())) {
        while (struct dirent *e = readdir(d)) {
            std::string name = e->d_name;
            if (name.rfind("shelfsim-dump-", 0) == 0)
                dumpPath = dir + "/" + name;
        }
        closedir(d);
    }
    ASSERT_FALSE(dumpPath.empty()) << "no dump written in " << dir;

    FILE *f = fopen(dumpPath.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string json;
    char buf[4096];
    size_t got;
    while ((got = fread(buf, 1, sizeof(buf), f)) > 0)
        json.append(buf, got);
    fclose(f);

    JsonValue doc = parseJson(json);
    EXPECT_NE(doc.find("reason")->raw.find("watchdog"),
              std::string::npos);
    const JsonValue *threads = doc.find("threads");
    ASSERT_NE(threads, nullptr);
    EXPECT_EQ(threads->items[0].find("structure")->raw,
              "retire-wedged");
    EXPECT_FALSE(doc.find("flight_recorder")->items.empty());

    remove(dumpPath.c_str());
    rmdir(dir.c_str());
}
