/** @file Tests for balanced-random mix generation. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/mix.hh"
#include "workload/spec2006.hh"

using namespace shelf;

class BalancedMixTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{};

TEST_P(BalancedMixTest, BalancedAndDuplicateFree)
{
    auto [threads, mixes] = GetParam();
    const size_t benchmarks = 28;
    auto all = balancedRandomMixes(benchmarks, threads, mixes, 42);
    ASSERT_EQ(all.size(), mixes);

    std::map<size_t, size_t> appearances;
    for (const auto &mix : all) {
        ASSERT_EQ(mix.benchmarks.size(), threads);
        std::set<size_t> uniq(mix.benchmarks.begin(),
                              mix.benchmarks.end());
        EXPECT_EQ(uniq.size(), threads) << "duplicate within a mix";
        for (size_t b : mix.benchmarks) {
            EXPECT_LT(b, benchmarks);
            ++appearances[b];
        }
    }
    size_t expected = mixes * threads / benchmarks;
    for (size_t b = 0; b < benchmarks; ++b)
        EXPECT_EQ(appearances[b], expected) << "benchmark " << b;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BalancedMixTest,
    ::testing::Values(std::make_tuple(1, 28), std::make_tuple(2, 28),
                      std::make_tuple(4, 28),
                      std::make_tuple(8, 28),
                      std::make_tuple(4, 56),
                      // Dense shape served by the rotation fallback
                      // (random repair cannot build 16-of-28 mixes).
                      std::make_tuple(16, 28)));

TEST(BalancedMix, Deterministic)
{
    auto a = balancedRandomMixes(28, 4, 28, 7);
    auto b = balancedRandomMixes(28, 4, 28, 7);
    for (size_t m = 0; m < a.size(); ++m)
        EXPECT_EQ(a[m].benchmarks, b[m].benchmarks);
}

TEST(BalancedMix, SeedChangesMixes)
{
    auto a = balancedRandomMixes(28, 4, 28, 1);
    auto b = balancedRandomMixes(28, 4, 28, 2);
    size_t same = 0;
    for (size_t m = 0; m < a.size(); ++m)
        same += a[m].benchmarks == b[m].benchmarks;
    EXPECT_LT(same, a.size());
}

TEST(BalancedMix, InvalidShapesDie)
{
    EXPECT_DEATH(balancedRandomMixes(4, 8, 4, 1), "duplicate-free");
    EXPECT_DEATH(balancedRandomMixes(28, 3, 5, 1), "divisible");
}

TEST(BalancedMix, NameUsesBenchmarkNames)
{
    WorkloadMix mix;
    mix.benchmarks = { spec2006Index("mcf"), spec2006Index("lbm") };
    EXPECT_EQ(mix.name(), "mcf+lbm");
}
