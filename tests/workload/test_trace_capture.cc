/**
 * @file
 * Tests for the retire-tap self-capture path and the headline
 * robustness property behind it: a captured trace, round-tripped
 * through SHLFTRC2 bytes and replayed as an external trace, drives
 * the simulator cycle-for-cycle identically to the generator that
 * produced the original stream.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/params.hh"
#include "sim/system.hh"
#include "workload/spec2006.hh"
#include "workload/trace_capture.hh"
#include "workload/trace_io.hh"

using namespace shelf;

namespace
{

SystemConfig
smallConfig(unsigned threads)
{
    SystemConfig cfg;
    cfg.core = baseCore64(threads);
    cfg.seed = 7;
    cfg.warmupCycles = 500;
    cfg.measureCycles = 2000;
    const char *benches[] = { "mcf", "gcc", "libquantum", "bzip2" };
    for (unsigned t = 0; t < threads; ++t)
        cfg.benchmarks.push_back(benches[t % 4]);
    return cfg;
}

/** Serialize through SHLFTRC2 bytes and decode again, so the replay
 * below exercises the real on-disk representation. */
Trace
roundTrip(const Trace &t)
{
    std::ostringstream os;
    std::string err;
    EXPECT_TRUE(writeTrace2(t, os, {}, &err)) << err;
    std::istringstream is(os.str());
    Trace back;
    TraceError te;
    std::string detail;
    EXPECT_TRUE(tryReadTrace(is, back, {}, &te, &detail))
        << traceErrorName(te) << ": " << detail;
    return back;
}

void
expectSameRun(const SystemResult &a, const SystemResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.totalIpc, b.totalIpc);
    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (size_t t = 0; t < a.threads.size(); ++t) {
        EXPECT_EQ(a.threads[t].instructions,
                  b.threads[t].instructions) << t;
        EXPECT_DOUBLE_EQ(a.threads[t].ipc, b.threads[t].ipc) << t;
    }
}

} // namespace

TEST(TraceCapture, BufferedCaptureThroughSystemRun)
{
    SystemConfig cfg = smallConfig(2);
    TraceCapture cap(2);
    System sys(cfg);
    sys.core().setRetireTap(cap.observer());
    SystemResult res = sys.run();
    ASSERT_GT(res.cycles, 0u);
    for (unsigned t = 0; t < 2; ++t) {
        EXPECT_GT(cap.captured(t), 0u) << t;
        EXPECT_EQ(cap.thread(t).size(), cap.captured(t)) << t;
        EXPECT_FALSE(cap.truncated(t)) << t;
        // Program order: pcs of a captured thread never go
        // backwards by more than a taken-branch target jump of the
        // generator, and every record decodes as a valid op.
        for (const TraceInst &in : cap.thread(t))
            EXPECT_LT(in.op, OpClass::NumOpClasses);
    }
}

TEST(TraceCapture, BufferedCapCountsDrops)
{
    SystemConfig cfg = smallConfig(1);
    TraceCapture cap(1, 100);
    System sys(cfg);
    sys.core().setRetireTap(cap.observer());
    sys.run();
    EXPECT_EQ(cap.thread(0).size(), 100u);
    EXPECT_EQ(cap.captured(0), 100u); // recording stops at the cap
    EXPECT_TRUE(cap.truncated(0));    // ...and the drop is reported
}

TEST(TraceCapture, StreamingWritesPublishedFiles)
{
    std::string prefix = ::testing::TempDir() + "/cap_t";
    SystemConfig cfg = smallConfig(2);
    TraceCapture cap(2);
    std::string err;
    ASSERT_TRUE(cap.openFiles(prefix, {}, err)) << err;
    System sys(cfg);
    sys.core().setRetireTap(cap.observer());
    sys.run();
    std::vector<std::string> paths;
    ASSERT_TRUE(cap.finish(err, &paths)) << err;
    ASSERT_EQ(paths.size(), 2u);
    for (unsigned t = 0; t < 2; ++t) {
        Trace back;
        TraceError te;
        std::string detail;
        ASSERT_TRUE(tryReadTraceFile(paths[t], back, {}, &te,
                                     &detail))
            << traceErrorName(te) << ": " << detail;
        EXPECT_EQ(back.size(), cap.captured(t)) << t;
        std::remove(paths[t].c_str());
    }
}

TEST(TraceCapture, ReplayDifferentialIsCycleExact)
{
    // Generator-backed run with an explicit trace length...
    SystemConfig gen = smallConfig(2);
    gen.traceLength = 30000;
    SystemResult genRes = System(gen).run();

    // ...must match a run replaying the same per-thread traces,
    // regenerated independently with the System's own derivation
    // (seed*1000003+t, thread-separated address spaces) and pushed
    // through SHLFTRC2 serialization.
    SystemConfig rep = gen;
    for (unsigned t = 0; t < 2; ++t) {
        Trace trc =
            TraceGenerator(spec2006Profile(gen.benchmarks[t]),
                           gen.seed * 1000003ULL + t,
                           static_cast<Addr>(t) << 30)
                .generate(gen.traceLength);
        rep.externalTraces.push_back(roundTrip(trc));
    }
    SystemResult repRes = System(rep).run();
    expectSameRun(genRes, repRes);
    EXPECT_GT(repRes.totalIpc, 0.0);
}

TEST(TraceCapture, MixedExternalAndGeneratedThreads)
{
    // Thread 0 replays an external trace; thread 1's entry is empty
    // so it falls back to its generator profile. The result must be
    // identical to the fully generated run.
    SystemConfig gen = smallConfig(2);
    gen.traceLength = 20000;
    SystemResult genRes = System(gen).run();

    SystemConfig mixed = gen;
    mixed.externalTraces.resize(2);
    mixed.externalTraces[0] =
        roundTrip(TraceGenerator(spec2006Profile(gen.benchmarks[0]),
                                 gen.seed * 1000003ULL,
                                 0)
                      .generate(gen.traceLength));
    SystemResult mixRes = System(mixed).run();
    expectSameRun(genRes, mixRes);
}
