/**
 * @file
 * Tests for the synthetic trace generator: determinism, fidelity of
 * each profile knob (measured via characterize()), and a property
 * sweep across all 28 SPEC-like profiles.
 */

#include <gtest/gtest.h>

#include "workload/characterize.hh"
#include "workload/generator.hh"
#include "workload/spec2006.hh"

using namespace shelf;

TEST(Generator, Deterministic)
{
    const auto &prof = spec2006Profile("gcc");
    Trace a = TraceGenerator(prof, 99, 0).generate(5000);
    Trace b = TraceGenerator(prof, 99, 0).generate(5000);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].op, b[i].op);
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(a[i].src1, b[i].src1);
        EXPECT_EQ(a[i].dst, b[i].dst);
        EXPECT_EQ(a[i].taken, b[i].taken);
    }
}

TEST(Generator, ExtractSubTraceMatchesFullGeneration)
{
    const auto &prof = spec2006Profile("mcf");
    Trace full = TraceGenerator(prof, 42, 1 << 20).generate(5000);
    Trace sub = TraceGenerator::extractSubTrace(prof, 42, 1 << 20,
                                                1200, 800);
    ASSERT_EQ(sub.size(), 800u);
    for (size_t i = 0; i < sub.size(); ++i) {
        EXPECT_EQ(sub[i].op, full[1200 + i].op);
        EXPECT_EQ(sub[i].pc, full[1200 + i].pc);
        EXPECT_EQ(sub[i].addr, full[1200 + i].addr);
        EXPECT_EQ(sub[i].src1, full[1200 + i].src1);
        EXPECT_EQ(sub[i].dst, full[1200 + i].dst);
        EXPECT_EQ(sub[i].taken, full[1200 + i].taken);
    }
}

TEST(Generator, ExtractSubTraceAtZeroEqualsGenerate)
{
    const auto &prof = spec2006Profile("gcc");
    Trace a = TraceGenerator(prof, 7, 0).generate(1000);
    Trace b = TraceGenerator::extractSubTrace(prof, 7, 0, 0, 1000);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].pc, b[i].pc);
}

TEST(Generator, DifferentSeedsDiffer)
{
    const auto &prof = spec2006Profile("gcc");
    Trace a = TraceGenerator(prof, 1, 0).generate(1000);
    Trace b = TraceGenerator(prof, 2, 0).generate(1000);
    size_t same = 0;
    for (size_t i = 0; i < a.size(); ++i)
        same += a[i].op == b[i].op && a[i].addr == b[i].addr;
    EXPECT_LT(same, a.size() / 2);
}

TEST(Generator, DataBaseSeparatesAddressSpaces)
{
    const auto &prof = spec2006Profile("hmmer");
    Trace a = TraceGenerator(prof, 5, 0).generate(2000);
    Trace b = TraceGenerator(prof, 5, 1ULL << 30).generate(2000);
    for (const auto &inst : a) {
        if (inst.isMem()) {
            EXPECT_LT(inst.addr, 1ULL << 30);
        }
    }
    for (const auto &inst : b) {
        if (inst.isMem()) {
            EXPECT_GE(inst.addr, 1ULL << 30);
        }
    }
}

TEST(Generator, PointerChaseCreatesLoadLoadDependences)
{
    BenchmarkProfile p = spec2006Profile("mcf");
    Trace t = TraceGenerator(p, 3, 0).generate(20000);
    TraceCharacter c = characterize(t);
    EXPECT_GT(c.chaseFrac, p.pointerChaseFrac * 0.5);
}

TEST(Generator, SourcesReferToValidRegisters)
{
    Trace t = TraceGenerator(spec2006Profile("namd"), 8, 0)
        .generate(10000);
    for (const auto &inst : t) {
        for (RegId r : { inst.src1, inst.src2, inst.dst }) {
            if (r != kNoReg) {
                EXPECT_GE(r, 0);
                EXPECT_LT(r, static_cast<RegId>(kNumArchRegs));
            }
        }
        // (braced to keep gtest macros out of dangling-else land)
        if (inst.isMem()) {
            EXPECT_GT(inst.size, 0);
            EXPECT_EQ(inst.addr % 8, 0u);
        }
    }
}

class ProfileFidelityTest
    : public ::testing::TestWithParam<size_t>
{};

TEST_P(ProfileFidelityTest, MixMatchesProfile)
{
    const BenchmarkProfile &p = spec2006Profiles()[GetParam()];
    Trace t = TraceGenerator(p, 1234, 0).generate(40000);
    TraceCharacter c = characterize(t);

    EXPECT_NEAR(c.loadFrac, p.loadFrac, 0.02) << p.name;
    EXPECT_NEAR(c.storeFrac, p.storeFrac, 0.02) << p.name;
    EXPECT_NEAR(c.branchFrac, p.branchFrac, 0.02) << p.name;
    // Footprint grows with the working set (but bounded by samples).
    if (p.workingSetKB <= 512) {
        EXPECT_LT(c.uniqueBlocksKB, p.workingSetKB * 1.1) << p.name;
    }
    // The trace touches a decent portion of small working sets.
    if (p.workingSetKB <= 128) {
        EXPECT_GT(c.uniqueBlocksKB, p.workingSetKB * 0.3) << p.name;
    }
}

TEST_P(ProfileFidelityTest, BranchBiasesLearnable)
{
    const BenchmarkProfile &p = spec2006Profiles()[GetParam()];
    Trace t = TraceGenerator(p, 77, 0).generate(60000);
    // An ideal per-PC (bimodal) predictor should approach the bias
    // error: random branches cost ~50%, biased ones ~4%.
    std::map<Addr, std::pair<uint64_t, uint64_t>> per_pc;
    for (const auto &inst : t) {
        if (inst.isBranch()) {
            per_pc[inst.pc].first += inst.taken;
            ++per_pc[inst.pc].second;
        }
    }
    double err = 0, n = 0;
    for (const auto &[pc, v] : per_pc) {
        double taken = static_cast<double>(v.first) / v.second;
        err += std::min(taken, 1 - taken) * v.second;
        n += v.second;
    }
    double ideal = err / n;
    double expected = 0.5 * p.branchRandomFrac +
        0.05 * (1 - p.branchRandomFrac);
    EXPECT_NEAR(ideal, expected, 0.06) << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ProfileFidelityTest,
    ::testing::Range<size_t>(0, 28),
    [](const ::testing::TestParamInfo<size_t> &info) {
        return spec2006Profiles()[info.param].name;
    });

TEST(Profiles, All28PresentAndValid)
{
    const auto &all = spec2006Profiles();
    EXPECT_EQ(all.size(), 28u);
    for (const auto &p : all)
        p.validate(); // fatal()s on error
    EXPECT_EQ(spec2006Index("mcf"), 3u);
    EXPECT_EQ(spec2006Profile("lbm").name, "lbm");
}

TEST(Profiles, UnknownNameDies)
{
    EXPECT_DEATH(spec2006Profile("not-a-benchmark"), "unknown");
}
