/** @file Tests for the SimpleO3 text-trace importer. */

#include <gtest/gtest.h>

#include <sstream>

#include "workload/trace_import.hh"

using namespace shelf;

namespace
{

bool
importStr(const std::string &text, Trace &out, std::string &err,
          TraceImportOptions opt = {})
{
    std::istringstream is(text);
    return tryImportSimpleO3(is, out, opt, err);
}

} // namespace

TEST(TraceImport, ParsesReadsAndWrites)
{
    Trace t;
    std::string err;
    ASSERT_TRUE(importStr("0x1000 R\n8256 W\n0X20C0 R\n", t, err))
        << err;
    // bubbleCount=3 fillers plus the access itself, per line.
    ASSERT_EQ(t.size(), 3u * 4u);
    EXPECT_EQ(t[3].op, OpClass::MemRead);
    EXPECT_EQ(t[3].addr, 0x1000u);
    EXPECT_EQ(t[7].op, OpClass::MemWrite);
    EXPECT_EQ(t[7].addr, 8256u / 64 * 64);
    EXPECT_EQ(t[11].op, OpClass::MemRead);
    EXPECT_EQ(t[11].addr, 0x20C0u);
    // Fillers are dependent IntAlu work.
    for (size_t i : { 0u, 1u, 2u, 4u, 5u, 6u }) {
        EXPECT_EQ(t[i].op, OpClass::IntAlu) << i;
        EXPECT_NE(t[i].dst, kNoReg) << i;
    }
    // pcs strictly increase: the import is a straight-line stream.
    for (size_t i = 1; i < t.size(); ++i)
        EXPECT_GT(t[i].pc, t[i - 1].pc) << i;
}

TEST(TraceImport, AlignsToCacheLines)
{
    Trace t;
    std::string err;
    ASSERT_TRUE(importStr("0x1039 R\n", t, err)) << err;
    EXPECT_EQ(t.back().addr, 0x1000u);
}

TEST(TraceImport, SkipsCommentsAndBlankLines)
{
    Trace t;
    std::string err;
    ASSERT_TRUE(importStr("# header comment\n"
                          "\n"
                          "   \n"
                          "0x40 R\n"
                          "# trailing comment\n",
                          t, err))
        << err;
    EXPECT_EQ(t.size(), 4u);
}

TEST(TraceImport, ToleratesCrlfAndExtraSpaces)
{
    Trace t;
    std::string err;
    ASSERT_TRUE(importStr("0x80   R\r\n  0xC0 W\r\n", t, err))
        << err;
    EXPECT_EQ(t.size(), 8u);
    EXPECT_EQ(t[3].addr, 0x80u);
    EXPECT_EQ(t[7].addr, 0xC0u);
}

TEST(TraceImport, BubbleCountIsConfigurable)
{
    TraceImportOptions opt;
    opt.bubbleCount = 0;
    Trace t;
    std::string err;
    ASSERT_TRUE(importStr("0x40 R\n0x80 W\n", t, err, opt)) << err;
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0].op, OpClass::MemRead);
    EXPECT_EQ(t[1].op, OpClass::MemWrite);
}

TEST(TraceImport, ErrorsAreLineNumbered)
{
    Trace t;
    std::string err;

    EXPECT_FALSE(importStr("0x40 R\n0x80 R W\n", t, err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
    EXPECT_NE(err.find("3 tokens"), std::string::npos) << err;

    EXPECT_FALSE(importStr("0x40 X\n", t, err));
    EXPECT_NE(err.find("line 1"), std::string::npos) << err;
    EXPECT_NE(err.find("neither R nor W"), std::string::npos) << err;

    EXPECT_FALSE(importStr("zzz R\n", t, err));
    EXPECT_NE(err.find("bad address 'zzz'"), std::string::npos)
        << err;

    EXPECT_FALSE(importStr("0x R\n", t, err));
    EXPECT_NE(err.find("bad address"), std::string::npos) << err;
}

TEST(TraceImport, InstructionCapIsEnforced)
{
    TraceImportOptions opt;
    opt.maxInstructions = 7; // second line (insts 5..8) crosses it
    Trace t;
    std::string err;
    EXPECT_FALSE(importStr("0x40 R\n0x80 R\n", t, err, opt));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
    EXPECT_NE(err.find("instruction cap"), std::string::npos) << err;
}

TEST(TraceImport, MissingFileReportsPath)
{
    Trace t;
    std::string err;
    EXPECT_FALSE(tryImportSimpleO3File("/nonexistent/x.trace", t,
                                       {}, err));
    EXPECT_NE(err.find("/nonexistent/x.trace"), std::string::npos)
        << err;
}
