/** @file Round-trip tests for trace serialization. */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "workload/spec2006.hh"
#include "workload/trace_io.hh"

using namespace shelf;

namespace
{

void
expectTracesEqual(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc) << i;
        EXPECT_EQ(a[i].addr, b[i].addr) << i;
        EXPECT_EQ(a[i].op, b[i].op) << i;
        EXPECT_EQ(a[i].src1, b[i].src1) << i;
        EXPECT_EQ(a[i].src2, b[i].src2) << i;
        EXPECT_EQ(a[i].dst, b[i].dst) << i;
        EXPECT_EQ(a[i].latency, b[i].latency) << i;
        EXPECT_EQ(a[i].size, b[i].size) << i;
        EXPECT_EQ(a[i].taken, b[i].taken) << i;
    }
}

} // namespace

TEST(TraceIO, StreamRoundTrip)
{
    Trace t = TraceGenerator(spec2006Profile("gcc"), 42, 0x1000)
        .generate(5000);
    std::stringstream ss;
    writeTrace(t, ss);
    Trace back = readTrace(ss);
    expectTracesEqual(t, back);
}

TEST(TraceIO, FileRoundTrip)
{
    Trace t = TraceGenerator(spec2006Profile("mcf"), 7, 0)
        .generate(2000);
    std::string path = ::testing::TempDir() + "/shelfsim_trace.bin";
    writeTraceFile(t, path);
    Trace back = readTraceFile(path);
    expectTracesEqual(t, back);
    std::remove(path.c_str());
}

TEST(TraceIO, EmptyTrace)
{
    std::stringstream ss;
    writeTrace({}, ss);
    EXPECT_TRUE(readTrace(ss).empty());
}

TEST(TraceIO, BadMagicDies)
{
    std::stringstream ss;
    ss << "NOTATRCE\x01\x02";
    EXPECT_DEATH(readTrace(ss), "bad magic");
}

TEST(TraceIO, TruncatedStreamDies)
{
    Trace t = TraceGenerator(spec2006Profile("lbm"), 1, 0)
        .generate(100);
    std::stringstream ss;
    writeTrace(t, ss);
    std::string data = ss.str();
    std::stringstream cut(data.substr(0, data.size() / 2));
    EXPECT_DEATH(readTrace(cut), "truncated");
}

TEST(TraceIO, ImplausibleHeaderCountDies)
{
    // A header that claims 2^31 records but carries no payload used
    // to feed reserve() directly, committing gigabytes of vector
    // storage before the first record read could notice the stream
    // was empty. The count must be validated against the bytes that
    // actually remain.
    std::stringstream ss;
    writeTrace({}, ss);
    std::string data = ss.str();
    uint64_t fake = 1ULL << 31;
    for (int i = 0; i < 8; ++i)
        data[8 + i] = static_cast<char>(fake >> (8 * i));
    std::stringstream bad(data);
    EXPECT_DEATH(readTrace(bad), "truncated");
}

TEST(TraceIO, HeaderCountBeyondPayloadDies)
{
    // Claiming even one record more than the payload holds is
    // caught up front with the claimed-vs-remaining byte counts.
    Trace t = TraceGenerator(spec2006Profile("lbm"), 1, 0)
        .generate(10);
    std::stringstream ss;
    writeTrace(t, ss);
    std::string data = ss.str();
    uint64_t fake = t.size() + 1;
    for (int i = 0; i < 8; ++i)
        data[8 + i] = static_cast<char>(fake >> (8 * i));
    std::stringstream bad(data);
    EXPECT_DEATH(readTrace(bad), "truncated");
}

TEST(TraceIO, CorruptOpClassDies)
{
    std::stringstream ss;
    Trace t(1);
    t[0].op = OpClass::IntAlu;
    writeTrace(t, ss);
    std::string data = ss.str();
    data[8 + 8 + 8 + 8] = '\x7F'; // op byte of the first instruction
    std::stringstream bad(data);
    EXPECT_DEATH(readTrace(bad), "bad op class");
}
