/** @file Round-trip tests for trace serialization. */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "workload/spec2006.hh"
#include "workload/trace_io.hh"

using namespace shelf;

namespace
{

void
expectTracesEqual(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc) << i;
        EXPECT_EQ(a[i].addr, b[i].addr) << i;
        EXPECT_EQ(a[i].op, b[i].op) << i;
        EXPECT_EQ(a[i].src1, b[i].src1) << i;
        EXPECT_EQ(a[i].src2, b[i].src2) << i;
        EXPECT_EQ(a[i].dst, b[i].dst) << i;
        EXPECT_EQ(a[i].latency, b[i].latency) << i;
        EXPECT_EQ(a[i].size, b[i].size) << i;
        EXPECT_EQ(a[i].taken, b[i].taken) << i;
    }
}

} // namespace

TEST(TraceIO, StreamRoundTrip)
{
    Trace t = TraceGenerator(spec2006Profile("gcc"), 42, 0x1000)
        .generate(5000);
    std::stringstream ss;
    writeTrace(t, ss);
    Trace back = readTrace(ss);
    expectTracesEqual(t, back);
}

TEST(TraceIO, FileRoundTrip)
{
    Trace t = TraceGenerator(spec2006Profile("mcf"), 7, 0)
        .generate(2000);
    std::string path = ::testing::TempDir() + "/shelfsim_trace.bin";
    writeTraceFile(t, path);
    Trace back = readTraceFile(path);
    expectTracesEqual(t, back);
    std::remove(path.c_str());
}

TEST(TraceIO, EmptyTrace)
{
    std::stringstream ss;
    writeTrace({}, ss);
    EXPECT_TRUE(readTrace(ss).empty());
}

TEST(TraceIO, BadMagicDies)
{
    std::stringstream ss;
    ss << "NOTATRCE\x01\x02";
    EXPECT_DEATH(readTrace(ss), "bad magic");
}

TEST(TraceIO, TruncatedStreamDies)
{
    Trace t = TraceGenerator(spec2006Profile("lbm"), 1, 0)
        .generate(100);
    std::stringstream ss;
    writeTrace(t, ss);
    std::string data = ss.str();
    std::stringstream cut(data.substr(0, data.size() / 2));
    EXPECT_DEATH(readTrace(cut), "truncated");
}

TEST(TraceIO, ImplausibleHeaderCountDies)
{
    // A header that claims 2^31 records but carries no payload used
    // to feed reserve() directly, committing gigabytes of vector
    // storage before the first record read could notice the stream
    // was empty. The count must be validated against the bytes that
    // actually remain.
    std::stringstream ss;
    writeTrace({}, ss);
    std::string data = ss.str();
    uint64_t fake = 1ULL << 31;
    for (int i = 0; i < 8; ++i)
        data[8 + i] = static_cast<char>(fake >> (8 * i));
    std::stringstream bad(data);
    EXPECT_DEATH(readTrace(bad), "truncated");
}

TEST(TraceIO, HeaderCountBeyondPayloadDies)
{
    // Claiming even one record more than the payload holds is
    // caught up front with the claimed-vs-remaining byte counts.
    Trace t = TraceGenerator(spec2006Profile("lbm"), 1, 0)
        .generate(10);
    std::stringstream ss;
    writeTrace(t, ss);
    std::string data = ss.str();
    uint64_t fake = t.size() + 1;
    for (int i = 0; i < 8; ++i)
        data[8 + i] = static_cast<char>(fake >> (8 * i));
    std::stringstream bad(data);
    EXPECT_DEATH(readTrace(bad), "truncated");
}

TEST(TraceIO, CorruptOpClassDies)
{
    std::stringstream ss;
    Trace t(1);
    t[0].op = OpClass::IntAlu;
    writeTrace(t, ss);
    std::string data = ss.str();
    data[8 + 8 + 8 + 8] = '\x7F'; // op byte of the first instruction
    std::stringstream bad(data);
    EXPECT_DEATH(readTrace(bad), "bad op class");
}

// ---------------------------------------------------------------
// SHLFTRC2: round trips, byte-pinned fixtures, and the
// truncation / bit-flip matrix over every header, chunk, and
// trailer field. The format constants used for offsets:
//   file header  16 B  (magic 8 | chunkCapacity 4 | flags 4)
//   chunk        8 + 16 + payload  (magic | count,raw,comp,crc)
//   trailer      8 + 16  (magic | totalCount 8 | fileCrc | crc)
//   record       26 B (raw/uncompressed mode)
// ---------------------------------------------------------------

#include <zlib.h>

#include <cstdint>
#include <fstream>

#include "base/strutil.hh"

namespace
{

constexpr size_t kHdr = 16;
constexpr size_t kChunkHdr = 8 + 16;
constexpr size_t kRec = 26;
constexpr size_t kTrailer = 8 + 16;

/** Deterministic hand-built trace (no generator involvement, so the
 * serialized bytes are pinned by this file alone). */
Trace
handTrace(size_t n)
{
    Trace t;
    for (size_t i = 0; i < n; ++i) {
        TraceInst in;
        in.pc = 0x1000 + 4 * i;
        in.op = static_cast<OpClass>(i % kNumOpClasses);
        in.src1 = static_cast<RegId>(i % 48);
        in.src2 = (i % 3) ? kNoReg : static_cast<RegId>(47 - i % 48);
        in.dst = static_cast<RegId>((i + 7) % 48);
        in.latency = static_cast<uint8_t>(i % 5);
        in.addr = 0x40000000ULL + 64 * i;
        in.size = 8;
        in.taken = (i % 2) != 0;
        t.push_back(in);
    }
    return t;
}

std::string
v2Bytes(const Trace &t, uint32_t chunkInsts, bool compress)
{
    TraceWriteOptions wo;
    wo.chunkInsts = chunkInsts;
    wo.compress = compress;
    std::ostringstream os;
    std::string err;
    EXPECT_TRUE(writeTrace2(t, os, wo, &err)) << err;
    return os.str();
}

void
put32(std::string &b, size_t off, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        b[off + i] = static_cast<char>(v >> (8 * i));
}

void
put64(std::string &b, size_t off, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        b[off + i] = static_cast<char>(v >> (8 * i));
}

uint32_t
crcOf(const std::string &b, size_t off, size_t len)
{
    return static_cast<uint32_t>(
        crc32(crc32(0L, Z_NULL, 0),
              reinterpret_cast<const Bytef *>(b.data() + off),
              static_cast<uInt>(len)));
}

/** Recompute the chunk CRC at @p chunkOff (offset of the chunk
 * magic) after a deliberate field edit. */
void
fixChunkCrc(std::string &b, size_t chunkOff, size_t payloadLen)
{
    uint32_t crc = crcOf(b, chunkOff + 8, 12);
    crc = static_cast<uint32_t>(crc32(
        crc,
        reinterpret_cast<const Bytef *>(b.data() + chunkOff + 24),
        static_cast<uInt>(payloadLen)));
    put32(b, chunkOff + 20, crc);
}

/** Recompute the trailer's own CRC (over totalCount + fileCrc). */
void
fixTrailerCrc(std::string &b)
{
    size_t toff = b.size() - kTrailer;
    put32(b, toff + 20, crcOf(b, toff + 8, 12));
}

struct ReadResult
{
    bool ok;
    Trace trace;
    TraceError err;
    std::string detail;
    TraceReadStats stats;
};

ReadResult
readBytes(const std::string &bytes, TraceReadOptions opt = {})
{
    ReadResult r;
    std::istringstream is(bytes);
    r.ok = tryReadTrace(is, r.trace, opt, &r.err, &r.detail,
                        &r.stats);
    return r;
}

} // namespace

TEST(TraceIO2, StreamRoundTripCompressed)
{
    Trace t = TraceGenerator(spec2006Profile("gcc"), 42, 0x1000)
        .generate(5000);
    std::string bytes = v2Bytes(t, 512, true);
    ReadResult r = readBytes(bytes);
    ASSERT_TRUE(r.ok) << traceErrorName(r.err) << ": " << r.detail;
    expectTracesEqual(t, r.trace);
    EXPECT_EQ(r.stats.chunks, 10u);
    EXPECT_EQ(r.stats.instructions, 5000u);
    EXPECT_EQ(r.stats.corruptChunks, 0u);
}

TEST(TraceIO2, StreamRoundTripRaw)
{
    Trace t = handTrace(100);
    std::string bytes = v2Bytes(t, 32, false);
    // Raw mode is byte-predictable: 4 chunks (32+32+32+4).
    EXPECT_EQ(bytes.size(),
              kHdr + 3 * (kChunkHdr + 32 * kRec) +
                  (kChunkHdr + 4 * kRec) + kTrailer);
    ReadResult r = readBytes(bytes);
    ASSERT_TRUE(r.ok) << traceErrorName(r.err) << ": " << r.detail;
    expectTracesEqual(t, r.trace);
}

TEST(TraceIO2, EmptyTrace)
{
    std::string bytes = v2Bytes({}, 16, true);
    EXPECT_EQ(bytes.size(), kHdr + kTrailer);
    ReadResult r = readBytes(bytes);
    ASSERT_TRUE(r.ok) << traceErrorName(r.err) << ": " << r.detail;
    EXPECT_TRUE(r.trace.empty());
}

TEST(TraceIO2, FileRoundTripIsAtomic)
{
    Trace t = handTrace(50);
    std::string dir = ::testing::TempDir() + "/trc2_atomic";
    ASSERT_EQ(::system(("rm -rf " + dir + " && mkdir -p " + dir)
                           .c_str()), 0);
    std::string path = dir + "/t.shlftrc";
    std::string err;
    ASSERT_TRUE(writeTrace2File(t, path, {}, &err)) << err;
    Trace back;
    TraceError te;
    std::string detail;
    ASSERT_TRUE(tryReadTraceFile(path, back, {}, &te, &detail))
        << traceErrorName(te) << ": " << detail;
    expectTracesEqual(t, back);
    // tmp+rename publish: no temp file may survive.
    FILE *p = popen(("ls " + dir).c_str(), "r");
    ASSERT_NE(p, nullptr);
    std::string listing;
    char buf[256];
    while (fgets(buf, sizeof(buf), p))
        listing += buf;
    pclose(p);
    EXPECT_EQ(listing, "t.shlftrc\n");
}

TEST(TraceIO2, PinnedBytes)
{
    // Byte-pinned fixture: the raw (uncompressed) serialization of a
    // fixed hand-built trace must never change — readers of old
    // files depend on it. Deflate mode is excluded on purpose: its
    // bytes belong to zlib, not to this format.
    Trace t = handTrace(5);
    std::string dir = ::testing::TempDir();
    std::string path = dir + "/pinned.shlftrc";
    std::string err;
    TraceWriteOptions wo;
    wo.chunkInsts = 4;
    wo.compress = false;
    ASSERT_TRUE(writeTrace2File(t, path, wo, &err)) << err;
    std::string hash;
    ASSERT_TRUE(tryTraceFileHash(path, hash, err)) << err;
    EXPECT_EQ(hash, "963e827580ecd116");
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    EXPECT_EQ(static_cast<size_t>(is.tellg()),
              kHdr + (kChunkHdr + 4 * kRec) + (kChunkHdr + kRec) +
                  kTrailer);
    std::remove(path.c_str());
}

TEST(TraceIO2, TruncationMatrix)
{
    // One 8-record raw chunk; every region of the stream has a
    // deterministic truncation error.
    Trace t = handTrace(8);
    std::string bytes = v2Bytes(t, 8, false);
    const size_t chunkEnd = kHdr + kChunkHdr + 8 * kRec;
    ASSERT_EQ(bytes.size(), chunkEnd + kTrailer);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
        ReadResult r = readBytes(bytes.substr(0, cut));
        ASSERT_FALSE(r.ok) << "cut " << cut;
        EXPECT_FALSE(r.detail.empty()) << "cut " << cut;
        TraceError want;
        if (cut < kHdr)
            want = TraceError::TruncatedHeader;
        else if (cut < kHdr + 8)
            want = TraceError::TruncatedTrailer; // ended mid-magic
        else if (cut < kHdr + kChunkHdr + 8 * kRec)
            want = TraceError::TruncatedChunk;
        else
            want = TraceError::TruncatedTrailer;
        EXPECT_EQ(r.err, want)
            << "cut " << cut << ": got " << traceErrorName(r.err)
            << " (" << r.detail << ")";
    }
    // The untruncated stream still reads cleanly.
    EXPECT_TRUE(readBytes(bytes).ok);
}

TEST(TraceIO2, HeaderFieldMatrix)
{
    Trace t = handTrace(8);
    std::string good = v2Bytes(t, 8, false);

    std::string b = good;
    b[0] = 'X'; // magic
    EXPECT_EQ(readBytes(b).err, TraceError::BadMagic);

    b = good;
    b[7] = '3'; // unknown version
    EXPECT_EQ(readBytes(b).err, TraceError::BadVersion);

    b = good;
    put32(b, 8, 0); // chunk capacity zero
    EXPECT_EQ(readBytes(b).err, TraceError::BadHeader);

    b = good;
    put32(b, 8, (1u << 24) + 1); // capacity beyond the format cap
    EXPECT_EQ(readBytes(b).err, TraceError::BadHeader);

    b = good;
    put32(b, 12, 0x2); // unknown flag bit
    EXPECT_EQ(readBytes(b).err, TraceError::BadHeader);
}

TEST(TraceIO2, ChunkFieldMatrix)
{
    Trace t = handTrace(8);
    std::string good = v2Bytes(t, 8, false);
    const size_t c = kHdr;        // chunk magic offset
    const size_t payload = 8 * kRec;

    // count inconsistent with rawBytes (checked before the CRC).
    std::string b = good;
    put32(b, c + 8, 7);
    EXPECT_EQ(readBytes(b).err, TraceError::BadChunkHeader);

    // count beyond the file's declared chunk capacity.
    b = good;
    put32(b, c + 8, 9);
    EXPECT_EQ(readBytes(b).err, TraceError::BadChunkHeader);

    // count zero.
    b = good;
    put32(b, c + 8, 0);
    EXPECT_EQ(readBytes(b).err, TraceError::BadChunkHeader);

    // rawBytes inconsistent with count.
    b = good;
    put32(b, c + 12, 8 * kRec + 1);
    EXPECT_EQ(readBytes(b).err, TraceError::BadChunkHeader);

    // compBytes zero / impossible for rawBytes.
    b = good;
    put32(b, c + 16, 0);
    EXPECT_EQ(readBytes(b).err, TraceError::BadChunkHeader);

    // stored CRC flipped.
    b = good;
    b[c + 20] ^= 0x01;
    EXPECT_EQ(readBytes(b).err, TraceError::CrcMismatch);

    // payload bit flipped (CRC catches it).
    b = good;
    b[c + 24 + 100] ^= 0x40;
    EXPECT_EQ(readBytes(b).err, TraceError::CrcMismatch);

    // op class out of range, CRC patched to match: the record
    // decoder itself must reject it.
    b = good;
    b[c + 24 + 16] = '\x7f'; // op byte of record 0 (pc8 + addr8)
    fixChunkCrc(b, c, payload);
    {
        ReadResult r = readBytes(b);
        EXPECT_EQ(r.err, TraceError::BadOperand);
        EXPECT_NE(r.detail.find("bad op class"), std::string::npos)
            << r.detail;
    }

    // register index out of range, CRC patched.
    b = good;
    b[c + 24 + 17] = 100; // src1 low byte of record 0
    fixChunkCrc(b, c, payload);
    {
        ReadResult r = readBytes(b);
        EXPECT_EQ(r.err, TraceError::BadOperand);
        EXPECT_NE(r.detail.find("impossible operand"),
                  std::string::npos) << r.detail;
    }

    // Deflated payload that no longer inflates, CRC patched.
    std::string z = v2Bytes(t, 8, true);
    z[kHdr + 24] ^= 0x55;
    fixChunkCrc(z, kHdr, z.size() - kHdr - kChunkHdr - kTrailer);
    EXPECT_EQ(readBytes(z).err, TraceError::DecompressError);
}

TEST(TraceIO2, TrailerFieldMatrix)
{
    Trace t = handTrace(8);
    std::string good = v2Bytes(t, 8, false);
    const size_t toff = good.size() - kTrailer;

    // totalCount wrong, trailer CRC patched to match.
    std::string b = good;
    put64(b, toff + 8, 9);
    fixTrailerCrc(b);
    EXPECT_EQ(readBytes(b).err, TraceError::CountMismatch);

    // fileCrc wrong, trailer CRC patched.
    b = good;
    b[toff + 16] ^= 0x01;
    fixTrailerCrc(b);
    EXPECT_EQ(readBytes(b).err, TraceError::FileCrcMismatch);

    // trailer's own CRC flipped.
    b = good;
    b[toff + 20] ^= 0x01;
    EXPECT_EQ(readBytes(b).err, TraceError::CrcMismatch);

    // bytes after the trailer.
    b = good + "junk";
    EXPECT_EQ(readBytes(b).err, TraceError::TrailingGarbage);
}

TEST(TraceIO2, CapsEnforced)
{
    Trace t = handTrace(64);
    std::string bytes = v2Bytes(t, 16, false);

    TraceReadOptions small;
    small.maxChunkInsts = 8;
    EXPECT_EQ(readBytes(bytes, small).err,
              TraceError::ChunkTooLarge);

    TraceReadOptions few;
    few.maxInstructions = 20; // second chunk crosses the cap
    EXPECT_EQ(readBytes(bytes, few).err,
              TraceError::TooManyInstructions);

    // Resource caps are hard failures even in skip mode — skipping
    // them would defeat the point of bounding the decode.
    few.skipCorrupt = true;
    ReadResult r = readBytes(bytes, few);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.err, TraceError::TooManyInstructions);
}

TEST(TraceIO2, SkipAndResyncDropsOnlyTheBadChunk)
{
    Trace t = handTrace(32); // 4 raw chunks of 8
    std::string bytes = v2Bytes(t, 8, false);
    const size_t chunk1 = kHdr + (kChunkHdr + 8 * kRec);
    bytes[chunk1 + 24 + 3] ^= 0x10; // payload of chunk 1

    // Fail-precise: the flip is fatal.
    EXPECT_EQ(readBytes(bytes).err, TraceError::CrcMismatch);

    // Skip mode: chunks 0, 2, 3 are salvaged; the damage is
    // surfaced in the stats, including the trailer's now-impossible
    // totals being tolerated.
    TraceReadOptions skip;
    skip.skipCorrupt = true;
    ReadResult r = readBytes(bytes, skip);
    ASSERT_TRUE(r.ok) << traceErrorName(r.err) << ": " << r.detail;
    EXPECT_EQ(r.stats.corruptChunks, 1u);
    EXPECT_EQ(r.stats.firstError, TraceError::CrcMismatch);
    ASSERT_EQ(r.trace.size(), 24u);
    Trace expect;
    for (size_t i = 0; i < 32; ++i)
        if (i / 8 != 1)
            expect.push_back(t[i]);
    expectTracesEqual(expect, r.trace);
}

TEST(TraceIO2, SkipResyncsOverInsertedGarbage)
{
    Trace t = handTrace(24); // 3 raw chunks of 8
    std::string bytes = v2Bytes(t, 8, false);
    const size_t chunk1 = kHdr + (kChunkHdr + 8 * kRec);
    bytes.insert(chunk1, "\x01\x02\x03\x04\x05");

    TraceReadOptions skip;
    skip.skipCorrupt = true;
    ReadResult r = readBytes(bytes, skip);
    ASSERT_TRUE(r.ok) << traceErrorName(r.err) << ": " << r.detail;
    EXPECT_GE(r.stats.corruptChunks, 1u);
    EXPECT_GT(r.stats.skippedBytes, 0u);
    EXPECT_LT(r.trace.size(), 24u);
    EXPECT_GE(r.trace.size(), 8u); // chunk 0 must survive
}

TEST(TraceIO2, SkipSalvagesTruncatedTail)
{
    Trace t = handTrace(24);
    std::string bytes = v2Bytes(t, 8, false);
    const size_t chunk2 = kHdr + 2 * (kChunkHdr + 8 * kRec);
    bytes.resize(chunk2 + 30); // cut inside chunk 2

    TraceReadOptions skip;
    skip.skipCorrupt = true;
    ReadResult r = readBytes(bytes, skip);
    ASSERT_TRUE(r.ok) << traceErrorName(r.err) << ": " << r.detail;
    ASSERT_EQ(r.trace.size(), 16u);
    EXPECT_GE(r.stats.corruptChunks, 1u);
    Trace expect(t.begin(), t.begin() + 16);
    expectTracesEqual(expect, r.trace);
}

TEST(TraceIO2, V1AutoDetectWithOneShotWarning)
{
    Trace t = handTrace(40);
    std::ostringstream os;
    writeTrace(t, os); // legacy SHLFTRC1
    std::string bytes = os.str();

    resetTraceDeprecationWarning();
    ::testing::internal::CaptureStderr();
    ReadResult r1 = readBytes(bytes);
    std::string first = ::testing::internal::GetCapturedStderr();
    ASSERT_TRUE(r1.ok) << traceErrorName(r1.err) << ": "
                       << r1.detail;
    expectTracesEqual(t, r1.trace);
    EXPECT_NE(first.find("deprecated"), std::string::npos) << first;

    ::testing::internal::CaptureStderr();
    ReadResult r2 = readBytes(bytes);
    std::string second = ::testing::internal::GetCapturedStderr();
    ASSERT_TRUE(r2.ok);
    EXPECT_EQ(second.find("deprecated"), std::string::npos)
        << second;
}

TEST(TraceIO2, SuppressedDeprecationWarningStaysSilent)
{
    // Isolated sweep workers suppress the SHLFTRC1 warning: each
    // --worker spawn is a fresh process, so the "one-shot" warning
    // would otherwise re-fire for every job of a legacy-trace sweep.
    Trace t = handTrace(40);
    std::ostringstream os;
    writeTrace(t, os); // legacy SHLFTRC1
    std::string bytes = os.str();

    resetTraceDeprecationWarning();
    suppressTraceDeprecationWarning();
    ::testing::internal::CaptureStderr();
    ReadResult r = readBytes(bytes);
    std::string err = ::testing::internal::GetCapturedStderr();
    ASSERT_TRUE(r.ok) << traceErrorName(r.err) << ": " << r.detail;
    expectTracesEqual(t, r.trace);
    EXPECT_EQ(err.find("deprecated"), std::string::npos) << err;

    // reset re-arms: the front-end warning still works afterwards.
    resetTraceDeprecationWarning();
    ::testing::internal::CaptureStderr();
    ReadResult r2 = readBytes(bytes);
    std::string rearmed = ::testing::internal::GetCapturedStderr();
    ASSERT_TRUE(r2.ok);
    EXPECT_NE(rearmed.find("deprecated"), std::string::npos)
        << rearmed;
}

TEST(TraceIO2, UnreadableFileIsIoError)
{
    Trace out;
    TraceError te = TraceError::None;
    std::string detail;
    EXPECT_FALSE(tryReadTraceFile("/nonexistent/trace.shlftrc", out,
                                  {}, &te, &detail));
    EXPECT_EQ(te, TraceError::Io);
    EXPECT_FALSE(detail.empty());
}

TEST(TraceIO2, ContentHashTracksBytes)
{
    std::string path = ::testing::TempDir() + "/hash.shlftrc";
    std::string err;
    ASSERT_TRUE(writeTrace2File(handTrace(20), path, {}, &err))
        << err;
    std::string h1, h2;
    ASSERT_TRUE(tryTraceFileHash(path, h1, err)) << err;
    ASSERT_EQ(h1.size(), 16u);
    for (char c : h1)
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
            << h1;
    // In-place edit changes the hash (content addressing).
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out |
                           std::ios::binary);
        f.seekp(40);
        f.put('\x7e');
    }
    ASSERT_TRUE(tryTraceFileHash(path, h2, err)) << err;
    EXPECT_NE(h1, h2);
    std::remove(path.c_str());
}

TEST(TraceIO2, LegacyWriteTraceFileEmitsV2)
{
    // Satellite: writeTraceFile() now publishes SHLFTRC2 via
    // tmp+rename; the fatal() readers keep working on it.
    Trace t = handTrace(30);
    std::string path = ::testing::TempDir() + "/legacy_api.shlftrc";
    writeTraceFile(t, path);
    std::ifstream is(path, std::ios::binary);
    char magic[8];
    is.read(magic, 8);
    EXPECT_EQ(std::string(magic, 8), "SHLFTRC2");
    expectTracesEqual(t, readTraceFile(path));
    std::remove(path.c_str());
}
