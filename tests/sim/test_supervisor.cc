/**
 * @file
 * Supervised sweep executor tests: retry/backoff policy, journal
 * write + resume, and — because this binary installs the worker
 * guard in its own main() — real sandboxed workers, including
 * crashing, hanging, and exiting ones driven by the self-faulting
 * hook in SweepJobSpec.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>

#include "base/json.hh"
#include "base/strutil.hh"
#include "sim/experiment.hh"
#include "sim/supervisor.hh"
#include "workload/spec2006.hh"
#include "workload/trace_io.hh"

using namespace shelf;

namespace
{

/** A tiny two-thread job that simulates in a few milliseconds. */
validate::SweepJobSpec
tinySpec(uint64_t seed = 1, const std::string &fault = "")
{
    validate::SweepJobSpec spec;
    spec.core = baseCore64(2);
    spec.mixBenchmarks = { 0, 1 };
    spec.warmupCycles = 100;
    spec.measureCycles = 400;
    spec.seed = seed;
    spec.fault = fault;
    return spec;
}

/** Unique-per-test journal path, removed on destruction. */
class TempJournal
{
  public:
    explicit TempJournal(const char *tag)
        : path_(csprintf("/tmp/shelfsim_test_%s_%d.jsonl", tag,
                         static_cast<int>(getpid())))
    {
        remove(path_.c_str());
    }

    ~TempJournal() { remove(path_.c_str()); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::string
fullJson(const SystemResult &res)
{
    return res.toJson(JsonWriter::kFullPrecision);
}

} // namespace

TEST(Backoff, PolicyDoublesAndCaps)
{
    EXPECT_DOUBLE_EQ(SweepSupervisor::backoffDelay(0, 0.25), 0.0);
    EXPECT_DOUBLE_EQ(SweepSupervisor::backoffDelay(1, 0.25), 0.25);
    EXPECT_DOUBLE_EQ(SweepSupervisor::backoffDelay(2, 0.25), 0.5);
    EXPECT_DOUBLE_EQ(SweepSupervisor::backoffDelay(3, 0.25), 1.0);
    EXPECT_DOUBLE_EQ(SweepSupervisor::backoffDelay(5, 0.25), 4.0);
    // Capped at 5 s no matter how many attempts.
    EXPECT_DOUBLE_EQ(SweepSupervisor::backoffDelay(6, 0.25), 5.0);
    EXPECT_DOUBLE_EQ(SweepSupervisor::backoffDelay(30, 0.25), 5.0);
    EXPECT_DOUBLE_EQ(SweepSupervisor::backoffDelay(3, 0.0), 0.0);
}

TEST(Backoff, JitteredDelayStaysWithinBounds)
{
    // The jittered policy spreads each delay over [d, 1.25d),
    // deterministically keyed by (attempt, seed): fabric nodes
    // retrying the same dead peer desynchronize, yet every rerun
    // reproduces the exact same schedule.
    for (unsigned attempt = 1; attempt <= 8; ++attempt) {
        double d = SweepSupervisor::backoffDelay(attempt, 0.25);
        for (uint64_t seed : { uint64_t(1), uint64_t(42),
                               uint64_t(0xdeadbeef) }) {
            double j = SweepSupervisor::backoffDelayJittered(
                attempt, 0.25, seed);
            EXPECT_GE(j, d) << "attempt " << attempt;
            EXPECT_LT(j, d * 1.25) << "attempt " << attempt;
            EXPECT_DOUBLE_EQ(
                j, SweepSupervisor::backoffDelayJittered(attempt,
                                                         0.25, seed));
        }
    }
    // Attempt 0 has no delay to jitter...
    EXPECT_DOUBLE_EQ(
        SweepSupervisor::backoffDelayJittered(0, 0.25, 7), 0.0);
    // ...and different seeds genuinely spread out.
    EXPECT_NE(SweepSupervisor::backoffDelayJittered(1, 0.25, 1),
              SweepSupervisor::backoffDelayJittered(1, 0.25, 2));
}

TEST(Supervisor, InProcessMatchesRunMix)
{
    validate::SweepJobSpec spec = tinySpec();
    SweepSupervisor sup(SupervisorOptions{});
    auto outcomes = sup.run({ spec });
    ASSERT_EQ(outcomes.size(), 1u);
    ASSERT_TRUE(outcomes[0].ok());
    EXPECT_EQ(outcomes[0].attempts, 1u);
    EXPECT_FALSE(outcomes[0].fromJournal);
    EXPECT_EQ(fullJson(outcomes[0].result),
              fullJson(runSweepJob(spec)));
}

TEST(Supervisor, IsolatedMatchesInProcess)
{
    validate::SweepJobSpec spec = tinySpec();
    SupervisorOptions opt;
    opt.isolate = true;
    opt.timeoutSeconds = 120;
    SweepSupervisor sup(opt);
    auto outcomes = sup.run({ spec });
    ASSERT_EQ(outcomes.size(), 1u);
    ASSERT_TRUE(outcomes[0].ok()) << outcomes[0].stderrTail;
    // The result crossed a process boundary as JSON and must come
    // back bit-identical.
    EXPECT_EQ(fullJson(outcomes[0].result),
              fullJson(runSweepJob(spec)));
}

TEST(Supervisor, InProcessFaultIsSyntheticallyQuarantined)
{
    SupervisorOptions opt;
    opt.retries = 2;
    opt.backoffSeconds = 0; // keep the test fast
    SweepSupervisor sup(opt);
    auto outcomes = sup.run({ tinySpec(1, "crash"), tinySpec(2) });
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_FALSE(outcomes[0].ok());
    EXPECT_EQ(outcomes[0].attempts, 3u); // retries + 1
    EXPECT_EQ(outcomes[0].exitCode, 3);
    EXPECT_NE(outcomes[0].repro.find("--worker"), std::string::npos);
    EXPECT_TRUE(outcomes[1].ok()); // healthy neighbor unaffected
    EXPECT_EQ(SweepSupervisor::failures(outcomes), 1u);
    std::string summary = SweepSupervisor::failureSummary(outcomes);
    EXPECT_NE(summary.find("job 0"), std::string::npos);
    EXPECT_NE(summary.find("repro:"), std::string::npos);
}

TEST(Supervisor, IsolatedCrashRetriesThenQuarantines)
{
    SupervisorOptions opt;
    opt.isolate = true;
    opt.retries = 1;
    opt.backoffSeconds = 0;
    opt.timeoutSeconds = 120;
    SweepSupervisor sup(opt);
    auto outcomes = sup.run({ tinySpec(1, "crash"), tinySpec(2) });
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_FALSE(outcomes[0].ok());
    EXPECT_EQ(outcomes[0].attempts, 2u);
    // Plain builds die by SIGSEGV; sanitizer runtimes intercept the
    // fault and turn it into SIGABRT or a nonzero exit. Any of those
    // must land in quarantine as a non-timeout failure.
    EXPECT_TRUE(outcomes[0].termSignal != 0 ||
                outcomes[0].exitCode != 0)
        << "sig " << outcomes[0].termSignal << " exit "
        << outcomes[0].exitCode;
    EXPECT_FALSE(outcomes[0].timedOut);
    EXPECT_NE(outcomes[0].repro.find("--worker"), std::string::npos);
    // The crash stayed in its sandbox: this job still ran fine.
    ASSERT_TRUE(outcomes[1].ok());
    EXPECT_EQ(fullJson(outcomes[1].result),
              fullJson(runSweepJob(tinySpec(2))));
}

TEST(Supervisor, IsolatedExitNonzeroReportsExitCode)
{
    SupervisorOptions opt;
    opt.isolate = true;
    opt.retries = 0;
    opt.timeoutSeconds = 120;
    SweepSupervisor sup(opt);
    auto outcomes = sup.run({ tinySpec(1, "exit") });
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok());
    EXPECT_EQ(outcomes[0].attempts, 1u);
    EXPECT_EQ(outcomes[0].exitCode, 3);
    EXPECT_EQ(outcomes[0].termSignal, 0);
}

TEST(Supervisor, WatchdogKillsHungWorker)
{
    SupervisorOptions opt;
    opt.isolate = true;
    opt.retries = 0;
    opt.timeoutSeconds = 0.5;
    SweepSupervisor sup(opt);
    auto outcomes = sup.run({ tinySpec(1, "hang") });
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok());
    EXPECT_TRUE(outcomes[0].timedOut);
    EXPECT_EQ(outcomes[0].termSignal, SIGKILL);
}

TEST(Supervisor, WatchdogKillsStoppedWorker)
{
    // A SIGSTOP'd worker is alive but frozen: it holds its pipes
    // open, consumes no CPU, and never exits on its own — the
    // failure mode of a node wedged in D-state or paused by the
    // scheduler. Only the wall-clock watchdog can reclaim it
    // (SIGKILL reaps even stopped processes).
    SupervisorOptions opt;
    opt.isolate = true;
    opt.retries = 0;
    opt.timeoutSeconds = 0.5;
    SweepSupervisor sup(opt);
    auto outcomes = sup.run({ tinySpec(1, "stop") });
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok());
    EXPECT_TRUE(outcomes[0].timedOut);
    EXPECT_EQ(outcomes[0].termSignal, SIGKILL);
}

TEST(Supervisor, JournalResumeReplaysByteIdentically)
{
    TempJournal journal("resume");
    std::vector<validate::SweepJobSpec> specs = { tinySpec(1),
                                                  tinySpec(2) };

    SupervisorOptions opt;
    opt.journalPath = journal.path();
    auto first = SweepSupervisor(opt).run(specs);
    ASSERT_TRUE(first[0].ok() && first[1].ok());

    opt.resume = true;
    auto second = SweepSupervisor(opt).run(specs);
    ASSERT_EQ(second.size(), 2u);
    for (size_t i = 0; i < 2; ++i) {
        ASSERT_TRUE(second[i].ok());
        EXPECT_TRUE(second[i].fromJournal);
        EXPECT_EQ(fullJson(second[i].result),
                  fullJson(first[i].result));
    }
}

TEST(Supervisor, PartialResumeRunsOnlyMissingJobs)
{
    TempJournal journal("partial");
    SupervisorOptions opt;
    opt.journalPath = journal.path();
    auto first =
        SweepSupervisor(opt).run({ tinySpec(1), tinySpec(2) });
    ASSERT_TRUE(first[0].ok() && first[1].ok());

    // Resume a superset: jobs 1 and 2 replay, job 3 runs fresh.
    opt.resume = true;
    auto second = SweepSupervisor(opt).run(
        { tinySpec(1), tinySpec(2), tinySpec(3) });
    ASSERT_EQ(second.size(), 3u);
    EXPECT_TRUE(second[0].fromJournal);
    EXPECT_TRUE(second[1].fromJournal);
    EXPECT_FALSE(second[2].fromJournal);
    for (const auto &oc : second)
        EXPECT_TRUE(oc.ok());
}

TEST(Supervisor, QuarantinedOutcomeReplaysFromJournal)
{
    TempJournal journal("quarantine");
    SupervisorOptions opt;
    opt.journalPath = journal.path();
    opt.retries = 0;
    opt.backoffSeconds = 0;
    auto first = SweepSupervisor(opt).run({ tinySpec(1, "exit") });
    ASSERT_FALSE(first[0].ok());

    opt.resume = true;
    auto second = SweepSupervisor(opt).run({ tinySpec(1, "exit") });
    ASSERT_EQ(second.size(), 1u);
    EXPECT_FALSE(second[0].ok());
    EXPECT_TRUE(second[0].fromJournal);
    EXPECT_EQ(second[0].exitCode, first[0].exitCode);
    EXPECT_EQ(second[0].repro, first[0].repro);
}

TEST(Supervisor, TornJournalLineIsSkipped)
{
    TempJournal journal("torn");
    SupervisorOptions opt;
    opt.journalPath = journal.path();
    auto first = SweepSupervisor(opt).run({ tinySpec(1) });
    ASSERT_TRUE(first[0].ok());

    // Simulate a SIGKILL mid-append: a truncated trailing record.
    FILE *f = fopen(journal.path().c_str(), "a");
    ASSERT_NE(f, nullptr);
    fputs("{\"key\":\"half-written", f);
    fclose(f);

    opt.resume = true;
    auto second = SweepSupervisor(opt).run({ tinySpec(1) });
    ASSERT_TRUE(second[0].ok());
    EXPECT_TRUE(second[0].fromJournal);
    EXPECT_EQ(fullJson(second[0].result), fullJson(first[0].result));
}

TEST(Supervisor, WedgedWorkerLeavesLinkedCrashDump)
{
    // End-to-end crash-diagnostics path: a wedge fault stalls the
    // worker's retirement, the in-simulator watchdog panics well
    // before any wall-clock timeout, the panic hook writes a dump
    // JSON into dumpDir, and the quarantine artifact links it.
    std::string dir = csprintf("/tmp/shelfsim_test_dumps_%d",
                               static_cast<int>(getpid()));
    mkdir(dir.c_str(), 0755);
    TempJournal journal("wedge");

    SupervisorOptions opt;
    opt.isolate = true;
    opt.retries = 0;
    opt.timeoutSeconds = 120;
    opt.dumpDir = dir;
    opt.journalPath = journal.path();
    SweepSupervisor sup(opt);
    auto outcomes = sup.run({ tinySpec(1, "wedge") });
    ASSERT_EQ(outcomes.size(), 1u);
    ASSERT_FALSE(outcomes[0].ok());
    // The watchdog fired inside the simulator (panic -> abort), not
    // the supervisor's wall-clock watchdog.
    EXPECT_FALSE(outcomes[0].timedOut);
    EXPECT_NE(outcomes[0].stderrTail.find("watchdog"),
              std::string::npos);

    // The quarantine record links the worker's dump file...
    ASSERT_FALSE(outcomes[0].dumpFile.empty());
    EXPECT_EQ(outcomes[0].dumpFile.rfind(dir + "/", 0), 0u);
    std::string summary = SweepSupervisor::failureSummary(outcomes);
    EXPECT_NE(summary.find(outcomes[0].dumpFile),
              std::string::npos);

    // ...which exists, parses, and names the stuck structure with a
    // non-empty flight-recorder section.
    FILE *f = fopen(outcomes[0].dumpFile.c_str(), "r");
    ASSERT_NE(f, nullptr) << outcomes[0].dumpFile;
    std::string json;
    char buf[4096];
    size_t got;
    while ((got = fread(buf, 1, sizeof(buf), f)) > 0)
        json.append(buf, got);
    fclose(f);
    JsonValue doc = parseJson(json);
    EXPECT_NE(doc.find("reason")->raw.find("watchdog"),
              std::string::npos);
    ASSERT_NE(doc.find("threads"), nullptr);
    EXPECT_EQ(doc.find("threads")->items[0].find("structure")->raw,
              "retire-wedged");
    EXPECT_FALSE(doc.find("flight_recorder")->items.empty());
    // The dump carries the worker's own repro line.
    EXPECT_NE(doc.find("repro")->raw.find("--worker"),
              std::string::npos);

    // The journal's quarantine record carries the link too.
    opt.resume = true;
    auto replay = SweepSupervisor(opt).run({ tinySpec(1, "wedge") });
    ASSERT_FALSE(replay[0].ok());
    EXPECT_TRUE(replay[0].fromJournal);
    EXPECT_EQ(replay[0].dumpFile, outcomes[0].dumpFile);

    remove(outcomes[0].dumpFile.c_str());
    rmdir(dir.c_str());
}

TEST(Supervisor, ProgressCallbackSeesEveryJob)
{
    std::vector<validate::SweepJobSpec> specs = { tinySpec(1),
                                                  tinySpec(2),
                                                  tinySpec(3) };
    std::atomic<size_t> calls{0};
    SweepSupervisor sup(SupervisorOptions{});
    sup.setProgressCallback(
        [&](size_t, const JobOutcome &) { ++calls; });
    sup.run(specs);
    EXPECT_EQ(calls.load(), specs.size());
}

TEST(Supervisor, CorruptTraceQuarantinesWithoutRetries)
{
    // A job whose trace file is corrupt is a deterministic input
    // error: re-running cannot help, so the supervisor must
    // quarantine it on the first attempt with the dedicated exit
    // code and surface the TraceError diagnosis. The hash is
    // computed over the already-corrupted bytes so the failure is
    // the checksummed reader's, not the door's hash check.
    std::string path = csprintf("/tmp/shelfsim_corrupt_%d.shlftrc",
                                static_cast<int>(getpid()));
    {
        Trace t = TraceGenerator(spec2006Profile("mcf"), 3, 0)
            .generate(500);
        std::string werr;
        ASSERT_TRUE(writeTrace2File(t, path, {}, &werr)) << werr;
        FILE *f = fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        fseek(f, 60, SEEK_SET);
        fputc(0x5a, f);
        fclose(f);
    }
    validate::SweepJobSpec spec;
    spec.core = baseCore64(1);
    spec.warmupCycles = 100;
    spec.measureCycles = 400;
    spec.seed = 1;
    spec.tracePaths = { path };
    std::string ferr;
    ASSERT_TRUE(validate::fillTraceHashes(spec, ferr)) << ferr;

    SupervisorOptions opt;
    opt.retries = 2;
    opt.backoffSeconds = 0;
    SweepSupervisor sup(opt);
    auto outcomes = sup.run({ spec, tinySpec(2) });
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_FALSE(outcomes[0].ok());
    EXPECT_EQ(outcomes[0].status, JobOutcome::Status::Quarantined);
    EXPECT_EQ(outcomes[0].exitCode, kJobInputErrorExit);
    EXPECT_EQ(outcomes[0].attempts, 1u); // no pointless retries
    EXPECT_NE(outcomes[0].stderrTail.find("TraceError"),
              std::string::npos) << outcomes[0].stderrTail;
    EXPECT_TRUE(outcomes[1].ok()); // healthy neighbor unaffected
    remove(path.c_str());
}

int
main(int argc, char **argv)
{
    // This binary is its own sandboxed sweep worker: the isolation
    // tests re-exec it as `test_supervisor --worker '<spec>'`.
    if (int rc = 0; maybeRunSweepWorker(argc, argv, &rc))
        return rc;
    testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
