/**
 * @file
 * Unit tests for the thread-to-core allocation policy family
 * (sim/allocation): placement shapes of the naive policies, the
 * serpentine balance of the classification-aware one, the IPC-driven
 * dynamic re-deal, and the shape/name error paths.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/allocation.hh"
#include "workload/spec2006.hh"

using namespace shelf;

namespace
{

/** Allocation input of @p threads profile-less (neutral) threads. */
AllocationInput
neutralInput(size_t threads, unsigned cores, unsigned width)
{
    AllocationInput in;
    in.numCores = cores;
    in.threadsPerCore = width;
    in.profiles.assign(threads, nullptr);
    return in;
}

/** Threads on core @p c under @p assignment. */
unsigned
coreLoad(const std::vector<unsigned> &assignment, unsigned c)
{
    return static_cast<unsigned>(
        std::count(assignment.begin(), assignment.end(), c));
}

} // namespace

TEST(Allocation, PolicyNamesAreCanonical)
{
    const auto &names = allocationPolicyNames();
    ASSERT_EQ(names.size(), 4u);
    EXPECT_EQ(names[0], "round-robin");
    EXPECT_EQ(names[1], "fill-first");
    EXPECT_EQ(names[2], "classify");
    EXPECT_EQ(names[3], "dynamic");
    for (const auto &n : names)
        EXPECT_TRUE(isAllocationPolicy(n)) << n;
    EXPECT_FALSE(isAllocationPolicy("random"));
    EXPECT_FALSE(isAllocationPolicy(""));
}

TEST(Allocation, RoundRobinInterleaves)
{
    auto a = allocateThreads("round-robin", neutralInput(4, 2, 2));
    EXPECT_EQ(a, (std::vector<unsigned>{ 0, 1, 0, 1 }));
}

TEST(Allocation, FillFirstPacks)
{
    auto a = allocateThreads("fill-first", neutralInput(4, 2, 2));
    EXPECT_EQ(a, (std::vector<unsigned>{ 0, 0, 1, 1 }));
}

TEST(Allocation, PartialOccupancyStaysWithinWidth)
{
    for (const char *policy :
         { "round-robin", "fill-first", "classify", "dynamic" }) {
        auto a = allocateThreads(policy, neutralInput(5, 3, 2));
        ASSERT_EQ(a.size(), 5u) << policy;
        for (unsigned c = 0; c < 3; ++c)
            EXPECT_LE(coreLoad(a, c), 2u) << policy << " core " << c;
    }
}

TEST(Allocation, DynamicProbePlacementIsRoundRobin)
{
    // The dynamic policy's static placement is its probe epoch.
    auto dyn = allocateThreads("dynamic", neutralInput(6, 3, 2));
    auto rr = allocateThreads("round-robin", neutralInput(6, 3, 2));
    EXPECT_EQ(dyn, rr);
}

TEST(Allocation, ClassifyNeutralThreadsDealSerpentine)
{
    // All-neutral scores keep thread order through the stable sort,
    // so the deal is the serpentine identity: 0,1,1,0 on two cores.
    auto a = allocateThreads("classify", neutralInput(4, 2, 2));
    EXPECT_EQ(a, (std::vector<unsigned>{ 0, 1, 1, 0 }));
}

TEST(Allocation, ClassifySplitsMemoryBoundThreads)
{
    // Two memory monsters and two compute threads: classify must not
    // pile both memory-bound threads onto the same core.
    AllocationInput in = neutralInput(4, 2, 2);
    const BenchmarkProfile &mem1 = spec2006Profile("mcf");
    const BenchmarkProfile &mem2 = spec2006Profile("omnetpp");
    const BenchmarkProfile &cpu1 = spec2006Profile("hmmer");
    const BenchmarkProfile &cpu2 = spec2006Profile("namd");
    EXPECT_GT(memoryIntensityScore(mem1),
              memoryIntensityScore(cpu1));
    EXPECT_GT(memoryIntensityScore(mem2),
              memoryIntensityScore(cpu2));
    in.profiles = { &mem1, &cpu1, &mem2, &cpu2 };
    auto a = allocateThreads("classify", in);
    EXPECT_NE(a[0], a[2]) << "both memory-bound threads on core "
                          << a[0];
    EXPECT_NE(a[1], a[3]) << "both compute threads on core " << a[1];
}

TEST(Allocation, ScoreIsDeterministic)
{
    for (const auto &p : spec2006Profiles())
        EXPECT_EQ(memoryIntensityScore(p), memoryIntensityScore(p))
            << p.name;
}

TEST(Allocation, ReallocateByIpcSpreadsSlowThreads)
{
    // Ascending-IPC rank order: t0 (0.1), t3 (0.2), t2 (0.5),
    // t1 (0.9); serpentine on two cores -> 0, 1, 1, 0 by rank.
    auto a = reallocateByIpc({ 0.1, 0.9, 0.5, 0.2 }, 2, 2);
    ASSERT_EQ(a.size(), 4u);
    EXPECT_EQ(a[0], 0u);
    EXPECT_EQ(a[3], 1u);
    EXPECT_EQ(a[2], 1u);
    EXPECT_EQ(a[1], 0u);
}

TEST(Allocation, ReallocateByIpcBreaksTiesByThreadId)
{
    auto a = reallocateByIpc({ 0.5, 0.5, 0.5, 0.5 }, 2, 2);
    EXPECT_EQ(a, (std::vector<unsigned>{ 0, 1, 1, 0 }));
}

TEST(AllocationDeath, InfeasibleShapesDie)
{
    EXPECT_DEATH(allocateThreads("round-robin",
                                 neutralInput(5, 2, 2)),
                 "exceed");
    EXPECT_DEATH(allocateThreads("round-robin",
                                 neutralInput(0, 2, 2)),
                 "zero threads");
    EXPECT_DEATH(reallocateByIpc({ 1.0, 1.0, 1.0 }, 1, 2), "exceed");
}

TEST(AllocationDeath, UnknownPolicyDies)
{
    EXPECT_DEATH(allocateThreads("random", neutralInput(4, 2, 2)),
                 "unknown allocation policy");
}
