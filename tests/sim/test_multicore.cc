/**
 * @file
 * End-to-end tests of the multi-core system mode: aggregation and
 * determinism of N cores sharing one memory hierarchy, allocation
 * policy selection, the single-core compatibility guarantees (no new
 * JSON keys, unchanged code path), golden-model agreement of a
 * multi-core run, 8-thread configurations, and the fail-loud
 * behaviour of rehydrated results.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "base/json.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "validate/config_json.hh"
#include "validate/golden.hh"
#include "workload/generator.hh"
#include "workload/spec2006.hh"

using namespace shelf;

namespace
{

/** Two cores x two threads over four distinct benchmarks. */
SystemConfig
twoCoreConfig(CoreParams core, const std::string &alloc)
{
    SystemConfig cfg;
    cfg.core = std::move(core);
    cfg.numCores = 2;
    cfg.allocation = alloc;
    cfg.benchmarks = { "hmmer", "mcf", "gcc", "milc" };
    cfg.warmupCycles = 1500;
    cfg.measureCycles = 6000;
    return cfg;
}

} // namespace

TEST(MultiCore, RunsAndAggregates)
{
    System sys(twoCoreConfig(baseCore64(2), "round-robin"));
    EXPECT_EQ(sys.numCores(), 2u);
    SystemResult res = sys.run();
    EXPECT_EQ(res.numCores, 2u);
    EXPECT_EQ(res.allocation, "round-robin");
    EXPECT_EQ(res.cycles, 6000u);
    ASSERT_EQ(res.threads.size(), 4u);
    // Round-robin placement: global thread t on core t % 2, and the
    // aggregate instruction count is the sum over threads.
    uint64_t sum = 0;
    for (size_t t = 0; t < res.threads.size(); ++t) {
        EXPECT_EQ(res.threads[t].core, t % 2) << "thread " << t;
        EXPECT_GT(res.threads[t].instructions, 0u) << "thread " << t;
        sum += res.threads[t].instructions;
    }
    EXPECT_DOUBLE_EQ(res.totalIpc,
                     static_cast<double>(sum) / res.cycles);
    EXPECT_GT(res.energy.totalPJ, 0.0);
    EXPECT_GT(res.energy.edp, 0.0);
    EXPECT_GE(res.inSeqFrac, 0.0);
    EXPECT_LE(res.inSeqFrac, 1.0);
}

TEST(MultiCore, Deterministic)
{
    SystemConfig cfg = twoCoreConfig(shelfCore(2, true), "classify");
    std::string a = System(cfg).run().toJson(
        JsonWriter::kFullPrecision);
    std::string b = System(cfg).run().toJson(
        JsonWriter::kFullPrecision);
    EXPECT_EQ(a, b);
}

TEST(MultiCore, PoliciesPlaceAsDocumented)
{
    SystemConfig cfg = twoCoreConfig(baseCore64(2), "fill-first");
    SystemResult ff = System(cfg).run();
    EXPECT_EQ(ff.threads[0].core, 0u);
    EXPECT_EQ(ff.threads[1].core, 0u);
    EXPECT_EQ(ff.threads[2].core, 1u);
    EXPECT_EQ(ff.threads[3].core, 1u);

    cfg.allocation = "classify";
    SystemResult cl = System(cfg).run();
    // mcf (t1) and milc (t3) are the memory-bound pair; classify must
    // not co-locate them.
    EXPECT_NE(cl.threads[1].core, cl.threads[3].core);
}

TEST(MultiCore, DynamicPolicyRunsAndStaysDeterministic)
{
    SystemConfig cfg = twoCoreConfig(baseCore64(2), "dynamic");
    SystemResult a = System(cfg).run();
    SystemResult b = System(cfg).run();
    EXPECT_EQ(a.toJson(JsonWriter::kFullPrecision),
              b.toJson(JsonWriter::kFullPrecision));
    for (const auto &t : a.threads)
        EXPECT_LT(t.core, 2u);
}

TEST(MultiCore, PartialOccupancyLeavesACoreEmptyButRuns)
{
    SystemConfig cfg = twoCoreConfig(baseCore64(2), "fill-first");
    cfg.benchmarks = { "hmmer", "gcc" }; // fills core 0 only
    System sys(cfg);
    SystemResult res = sys.run();
    ASSERT_EQ(res.threads.size(), 2u);
    EXPECT_EQ(res.threads[0].core, 0u);
    EXPECT_EQ(res.threads[1].core, 0u);
    EXPECT_GT(res.totalIpc, 0.0);
}

TEST(MultiCore, SingleCoreResultCarriesNoMultiCoreKeys)
{
    // The numCores == 1 serialization must keep its exact historical
    // bytes: no num_cores / allocation / per-thread core keys.
    SystemConfig cfg;
    cfg.core = baseCore64(2);
    cfg.benchmarks = { "hmmer", "gcc" };
    cfg.warmupCycles = 1500;
    cfg.measureCycles = 6000;
    std::string json = System(cfg).run().toJson();
    EXPECT_EQ(json.find("num_cores"), std::string::npos);
    EXPECT_EQ(json.find("allocation"), std::string::npos);
    EXPECT_EQ(json.find("\"core\""), std::string::npos);
}

TEST(MultiCore, ResultJsonRoundTripsWithCoreFields)
{
    SystemResult res =
        System(twoCoreConfig(baseCore64(2), "fill-first")).run();
    std::string json = res.toJson(JsonWriter::kFullPrecision);
    EXPECT_NE(json.find("\"num_cores\":2"), std::string::npos);
    EXPECT_NE(json.find("\"allocation\":\"fill-first\""),
              std::string::npos);
    SystemResult back = SystemResult::fromJson(json);
    EXPECT_EQ(back.toJson(JsonWriter::kFullPrecision), json);
    EXPECT_EQ(back.numCores, 2u);
    EXPECT_EQ(back.allocation, "fill-first");
    ASSERT_EQ(back.threads.size(), res.threads.size());
    for (size_t t = 0; t < res.threads.size(); ++t)
        EXPECT_EQ(back.threads[t].core, res.threads[t].core);
}

TEST(MultiCore, RehydratedResultFailsLoudOnHistograms)
{
    SystemResult res =
        System(twoCoreConfig(baseCore64(2), "round-robin")).run();
    // A fresh in-process result carries its series histograms.
    EXPECT_TRUE(res.hasHistograms());
    EXPECT_GT(res.inSeqSeries().totalWeight() +
              res.reorderedSeries().totalWeight(), 0.0);
    // A rehydrated one must refuse to serve silently-empty ones.
    SystemResult back =
        SystemResult::fromJson(res.toJson(JsonWriter::kFullPrecision));
    EXPECT_FALSE(back.hasHistograms());
    EXPECT_DEATH(back.inSeqSeries(), "rehydrated");
    EXPECT_DEATH(back.reorderedSeries(), "rehydrated");
}

TEST(MultiCore, StatsReportCoversMultiCoreLines)
{
    System sys(twoCoreConfig(shelfCore(2, true), "round-robin"));
    sys.run();
    std::string report = sys.statsReport();
    for (const char *key :
         { "sim.cores", "core0.ipc", "core1.ipc", "thread0.core",
           "thread3.core", "sim.ipc", "classify.in_seq_frac",
           "stall.rob_full", "branch.mispredict_rate",
           "l1d.miss_rate", "energy.edp", "area.core" }) {
        EXPECT_NE(report.find(key), std::string::npos) << key;
    }
}

TEST(MultiCore, MismatchedShapesDie)
{
    SystemConfig cfg = twoCoreConfig(baseCore64(2), "round-robin");
    cfg.benchmarks.push_back("povray"); // 5 > 2 cores x 2 threads
    EXPECT_DEATH(System sys(cfg), "cores");

    SystemConfig unknown = twoCoreConfig(baseCore64(2), "best-fit");
    EXPECT_DEATH(System sys(unknown), "unknown allocation policy");
}

TEST(MultiCore, GoldenAgreementAcrossCores)
{
    // Feed known traces to a 2x2 system and check every global
    // thread's observed commit stream against the golden in-order
    // walk of its trace — cross-core interference through the shared
    // hierarchy must never corrupt per-thread commit order.
    SystemConfig cfg;
    cfg.core = shelfCore(2, true);
    cfg.numCores = 2;
    cfg.allocation = "round-robin";
    cfg.benchmarks = { "gcc", "mcf", "hmmer", "gobmk" };
    cfg.warmupCycles = 500;
    cfg.measureCycles = 4000;
    const char *names[4] = { "gcc", "mcf", "hmmer", "gobmk" };
    std::vector<Trace> traces;
    for (unsigned t = 0; t < 4; ++t) {
        TraceGenerator gen(spec2006Profile(names[t]), 1 + t,
                           static_cast<Addr>(t) << 30);
        traces.push_back(gen.generate(40000));
    }
    cfg.externalTraces = traces;

    System sys(cfg);
    // One commit log per core, installed before any cycle runs.
    std::vector<std::unique_ptr<validate::CommitLog>> logs;
    for (unsigned c = 0; c < sys.numCores(); ++c) {
        logs.push_back(std::make_unique<validate::CommitLog>(
            cfg.core.threads));
        if (sys.hasCore(c))
            sys.core(c).setCommitObserver(logs[c]->observer());
    }
    sys.run();

    uint64_t window = validate::goldenTailWindow(cfg.core);
    const auto &assignment = sys.threadAssignment();
    ASSERT_EQ(assignment.size(), 4u);
    for (unsigned t = 0; t < 4; ++t) {
        unsigned c = assignment[t];
        // Local tids are dealt in ascending global-thread order.
        ThreadID local = 0;
        for (unsigned u = 0; u < t; ++u)
            if (assignment[u] == c)
                ++local;
        validate::GoldenReport rep =
            validate::checkCommitsAgainstGolden(
                traces[t], logs[c]->thread(local), window);
        EXPECT_TRUE(rep.ok) << "thread " << t << ": " << rep.detail;
        EXPECT_GT(rep.commitsChecked, 0u) << "thread " << t;
    }
}

TEST(MultiCore, EightThreadSingleCoreRoundTrips)
{
    // Satellite: 8-thread configurations through the full JSON round
    // trip at full precision.
    SystemConfig cfg;
    cfg.core = baseCore64(8);
    cfg.benchmarks = { "hmmer", "mcf", "gcc", "milc",
                       "povray", "sjeng", "lbm", "namd" };
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 4000;
    SystemResult res = System(cfg).run();
    ASSERT_EQ(res.threads.size(), 8u);
    std::string json = res.toJson(JsonWriter::kFullPrecision);
    SystemResult back = SystemResult::fromJson(json);
    EXPECT_EQ(back.toJson(JsonWriter::kFullPrecision), json);
}

TEST(MultiCore, TwoCoresOfFourThreadsMatchDimensions)
{
    // The multicore_smoke shape: 2 cores x 4 threads, 8 global
    // threads, every policy.
    for (const char *alloc :
         { "round-robin", "fill-first", "classify", "dynamic" }) {
        SystemConfig cfg;
        cfg.core = baseCore64(4);
        cfg.numCores = 2;
        cfg.allocation = alloc;
        cfg.benchmarks = { "hmmer", "mcf", "gcc", "milc",
                           "povray", "sjeng", "lbm", "namd" };
        cfg.warmupCycles = 800;
        cfg.measureCycles = 3000;
        SystemResult res = System(cfg).run();
        ASSERT_EQ(res.threads.size(), 8u) << alloc;
        unsigned on0 = 0, on1 = 0;
        for (const auto &t : res.threads) {
            ASSERT_LT(t.core, 2u) << alloc;
            (t.core == 0 ? on0 : on1)++;
        }
        EXPECT_EQ(on0, 4u) << alloc;
        EXPECT_EQ(on1, 4u) << alloc;
    }
}

TEST(MultiCore, SweepSpecRoundTripsCoresAndAlloc)
{
    validate::SweepJobSpec spec;
    spec.core = baseCore64(4);
    spec.mixBenchmarks = { 0, 1, 2, 3, 4, 5, 6, 7 };
    spec.numCores = 2;
    spec.allocation = "classify";
    std::string json = spec.toJson();
    EXPECT_NE(json.find("\"cores\":2"), std::string::npos);
    EXPECT_NE(json.find("\"alloc\":\"classify\""),
              std::string::npos);
    validate::SweepJobSpec back =
        validate::SweepJobSpec::fromJson(json);
    EXPECT_EQ(back.numCores, 2u);
    EXPECT_EQ(back.allocation, "classify");
    EXPECT_EQ(back.toJson(), json);

    // Single-core specs keep their exact historical bytes: no cores
    // or alloc keys, whatever the allocation string says.
    validate::SweepJobSpec single;
    single.core = baseCore64(4);
    single.mixBenchmarks = { 0, 1, 2, 3 };
    std::string sj = single.toJson();
    EXPECT_EQ(sj.find("\"cores\""), std::string::npos);
    EXPECT_EQ(sj.find("\"alloc\""), std::string::npos);
}

TEST(MultiCore, SweepSpecRejectsBadShapes)
{
    validate::SweepJobSpec spec;
    spec.core = baseCore64(4);
    spec.mixBenchmarks = { 0, 1, 2, 3, 4, 5, 6, 7, 8 }; // 9 > 2x4
    spec.numCores = 2;
    std::string err;
    validate::SweepJobSpec out;
    EXPECT_FALSE(validate::trySweepJobSpecFromJson(spec.toJson(), out,
                                                   err));
    EXPECT_NE(err.find("cores"), std::string::npos) << err;

    std::string bad = "{\"alloc\":\"best-fit\"}";
    err.clear();
    EXPECT_FALSE(validate::trySweepJobSpecFromJson(bad, out, err));
    EXPECT_NE(err.find("alloc"), std::string::npos) << err;
}

TEST(MultiCore, RunMixAcceptsMultiCoreMixes)
{
    SimControls ctl;
    ctl.warmupCycles = 800;
    ctl.measureCycles = 3000;
    ctl.numCores = 2;
    ctl.allocation = "round-robin";
    auto mixes = standardMixes(8);
    ASSERT_EQ(mixes[0].benchmarks.size(), 8u);
    SystemResult res = runMix(baseCore64(4), mixes[0], ctl);
    EXPECT_EQ(res.numCores, 2u);
    EXPECT_EQ(res.threads.size(), 8u);
    EXPECT_GT(res.totalIpc, 0.0);
}
