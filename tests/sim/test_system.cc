/**
 * @file
 * End-to-end tests of the System driver and experiment helpers:
 * determinism, result sanity, STP methodology, and directional
 * checks of the paper's headline comparisons on small runs.
 */

#include <gtest/gtest.h>

#include "base/json.hh"
#include "metrics/throughput.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workload/spec2006.hh"

using namespace shelf;

namespace
{

SystemConfig
smallConfig(CoreParams core)
{
    SystemConfig cfg;
    cfg.core = core;
    cfg.benchmarks.assign(core.threads, "hmmer");
    if (core.threads >= 4)
        cfg.benchmarks = { "hmmer", "gcc", "milc", "povray" };
    cfg.warmupCycles = 1500;
    cfg.measureCycles = 6000;
    return cfg;
}

} // namespace

TEST(System, RunsAndProducesSaneResult)
{
    System sys(smallConfig(baseCore64(4)));
    SystemResult res = sys.run();
    EXPECT_EQ(res.cycles, 6000u);
    EXPECT_EQ(res.threads.size(), 4u);
    EXPECT_GT(res.totalIpc, 0.05);
    EXPECT_LE(res.totalIpc, 4.0);
    EXPECT_GE(res.inSeqFrac, 0.0);
    EXPECT_LE(res.inSeqFrac, 1.0);
    EXPECT_GT(res.energy.totalPJ, 0.0);
    EXPECT_GT(res.energy.edp, 0.0);
    for (const auto &t : res.threads)
        EXPECT_GT(t.instructions, 0u);
}

TEST(System, Deterministic)
{
    SystemResult a = System(smallConfig(baseCore64(4))).run();
    SystemResult b = System(smallConfig(baseCore64(4))).run();
    EXPECT_EQ(a.totalIpc, b.totalIpc);
    EXPECT_EQ(a.squashes, b.squashes);
    EXPECT_EQ(a.inSeqFrac, b.inSeqFrac);
    for (size_t t = 0; t < a.threads.size(); ++t)
        EXPECT_EQ(a.threads[t].instructions,
                  b.threads[t].instructions);
}

TEST(System, SeedChangesOutcome)
{
    SystemConfig cfg = smallConfig(baseCore64(4));
    SystemResult a = System(cfg).run();
    cfg.seed = 77;
    SystemResult b = System(cfg).run();
    EXPECT_NE(a.threads[0].instructions, b.threads[0].instructions);
}

TEST(System, MismatchedBenchmarksDie)
{
    SystemConfig cfg = smallConfig(baseCore64(4));
    cfg.benchmarks.pop_back();
    EXPECT_DEATH(System sys(cfg), "benchmarks");
}

TEST(System, ShelfConfigUsesShelf)
{
    SystemConfig cfg = smallConfig(shelfCore(4, true));
    SystemResult res = System(cfg).run();
    EXPECT_GT(res.shelfSteerFrac, 0.15);
    EXPECT_LT(res.shelfSteerFrac, 0.95);
}

TEST(System, MoreThreadsMoreInSequence)
{
    // Paper Figure 1 directional check at small scale.
    SystemConfig c1 = smallConfig(baseCore64(1));
    c1.benchmarks = { "gcc" };
    SystemConfig c4 = smallConfig(baseCore64(4));
    double f1 = System(c1).run().inSeqFrac;
    double f4 = System(c4).run().inSeqFrac;
    EXPECT_GT(f4, f1);
}

TEST(System, Base128BeatsBase64Throughput)
{
    SystemResult b64 = System(smallConfig(baseCore64(4))).run();
    SystemResult b128 = System(smallConfig(baseCore128(4))).run();
    EXPECT_GE(b128.totalIpc, b64.totalIpc * 0.98);
}

TEST(Experiment, StandardMixesShapedLikeThePaper)
{
    auto mixes = standardMixes(4);
    EXPECT_EQ(mixes.size(), 28u);
    for (const auto &m : mixes)
        EXPECT_EQ(m.benchmarks.size(), 4u);
}

TEST(Experiment, SimControlsScaleFromEnv)
{
    setenv("SHELFSIM_SCALE", "0.5", 1);
    SimControls ctl = SimControls::fromEnv();
    unsetenv("SHELFSIM_SCALE");
    SimControls def;
    EXPECT_EQ(ctl.measureCycles, def.measureCycles / 2);
}

TEST(Experiment, StReferenceCachesAndIsPositive)
{
    SimControls ctl;
    ctl.warmupCycles = 1000;
    ctl.measureCycles = 3000;
    STReference ref(ctl);
    double ipc1 = ref.ipc(spec2006Index("hmmer"));
    double ipc2 = ref.ipc(spec2006Index("hmmer"));
    EXPECT_GT(ipc1, 0.0);
    EXPECT_EQ(ipc1, ipc2);
}

TEST(Experiment, StpOfMixIsReasonable)
{
    SimControls ctl;
    ctl.warmupCycles = 1000;
    ctl.measureCycles = 4000;
    STReference ref(ctl);
    auto mixes = standardMixes(4);
    SystemResult res = runMix(baseCore64(4), mixes[0], ctl);
    double s = stpOf(res, mixes[0], ref);
    // 4 threads: STP within (0, 4].
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 4.0);
}

TEST(System, ExternalTracesUsedVerbatim)
{
    // Hand a tiny custom trace to the system; the committed work
    // must come from it (a pure serial ALU chain caps IPC near 1).
    SystemConfig cfg;
    cfg.core = baseCore64(1);
    cfg.benchmarks = { "custom" }; // label only
    cfg.warmupCycles = 200;
    cfg.measureCycles = 2000;
    Trace t;
    for (int i = 0; i < 12000; ++i) {
        TraceInst in;
        in.op = OpClass::IntAlu;
        in.dst = 0;
        in.src1 = 0;
        in.pc = 0x1000 + 4 * (i % 256);
        t.push_back(in);
    }
    cfg.externalTraces.push_back(std::move(t));
    SystemResult res = System(cfg).run();
    EXPECT_GT(res.totalIpc, 0.8);
    EXPECT_LE(res.totalIpc, 1.02);
}

TEST(System, ExternalTraceCountMismatchDies)
{
    SystemConfig cfg;
    cfg.core = baseCore64(2);
    cfg.benchmarks = { "gcc", "mcf" };
    cfg.externalTraces.resize(1);
    cfg.externalTraces[0].resize(10);
    EXPECT_DEATH(System sys(cfg), "external traces");
}

TEST(System, JsonExportWellFormedBasics)
{
    SystemResult res = System(smallConfig(baseCore64(4))).run();
    std::string json = res.toJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"total_ipc\""), std::string::npos);
    EXPECT_NE(json.find("\"threads\":["), std::string::npos);
    EXPECT_NE(json.find("\"energy\""), std::string::npos);
}

TEST(System, StatsReportCoversKeyLines)
{
    System sys(smallConfig(shelfCore(4, true)));
    sys.run();
    std::string report = sys.statsReport();
    for (const char *key :
         { "sim.ipc", "classify.in_seq_frac", "stall.rob_full",
           "occ.shelf", "branch.mispredict_rate", "l1d.miss_rate",
           "energy.edp", "area.core" }) {
        EXPECT_NE(report.find(key), std::string::npos) << key;
    }
}

TEST(Metrics, StpAndAntt)
{
    std::vector<double> mt = { 0.5, 1.0 };
    std::vector<double> st = { 1.0, 2.0 };
    EXPECT_DOUBLE_EQ(stp(mt, st), 1.0);
    EXPECT_DOUBLE_EQ(antt(mt, st), 2.0);
}

TEST(Metrics, GeomeanAndMean)
{
    EXPECT_DOUBLE_EQ(geomean({ 1.0, 4.0 }), 2.0);
    EXPECT_DOUBLE_EQ(mean({ 1.0, 3.0 }), 2.0);
    EXPECT_DEATH(geomean({}), "empty");
    EXPECT_DEATH(geomean({ 1.0, -1.0 }), "non-positive");
}

TEST(System, ResultJsonRoundTripsAtFullPrecision)
{
    SystemResult res = System(smallConfig(baseCore64(2))).run();
    std::string json = res.toJson(JsonWriter::kFullPrecision);
    SystemResult back = SystemResult::fromJson(json);
    // Re-serializing the reconstruction must be byte-identical:
    // this is what lets isolated sweep workers and journal replays
    // produce the same bytes as in-process runs.
    EXPECT_EQ(back.toJson(JsonWriter::kFullPrecision), json);
    // Spot-check a few reconstructed fields directly.
    EXPECT_EQ(back.cycles, res.cycles);
    EXPECT_EQ(back.totalIpc, res.totalIpc);
    ASSERT_EQ(back.threads.size(), res.threads.size());
    EXPECT_EQ(back.threads[0].benchmark, res.threads[0].benchmark);
    EXPECT_EQ(back.threads[0].instructions,
              res.threads[0].instructions);
    EXPECT_EQ(back.energy.edp, res.energy.edp);
    EXPECT_EQ(back.events.fetchedInsts, res.events.fetchedInsts);
}

TEST(System, ResultFromJsonRejectsGarbage)
{
    EXPECT_DEATH(SystemResult::fromJson("not json"), "");
    EXPECT_DEATH(SystemResult::fromJson("{\"bogus_key\":1}"),
                 "unknown");
}

TEST(SimControlsEnv, ScaleRejectsGarbage)
{
    for (const char *bad : { "nan", "0", "-1", "0.5x", "", "inf" }) {
        setenv("SHELFSIM_SCALE", bad, 1);
        EXPECT_DEATH(SimControls::fromEnv(), "SHELFSIM_SCALE");
    }
    unsetenv("SHELFSIM_SCALE");
}

TEST(SimControlsEnv, ScaleScalesAndClampsTinyValues)
{
    setenv("SHELFSIM_SCALE", "0.5", 1);
    SimControls half = SimControls::fromEnv();
    EXPECT_EQ(half.warmupCycles, 2000u);
    EXPECT_EQ(half.measureCycles, 8000u);
    // A scale that rounds measured cycles to zero clamps to 1
    // instead of producing an instant no-op "simulation".
    setenv("SHELFSIM_SCALE", "1e-9", 1);
    SimControls tiny = SimControls::fromEnv();
    EXPECT_EQ(tiny.measureCycles, 1u);
    unsetenv("SHELFSIM_SCALE");
}
