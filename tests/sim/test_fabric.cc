/**
 * @file
 * Sweep-fabric tests: node-list parsing, lease-record round trips,
 * journal merging (last-wins, lease dropping, torn-line skipping,
 * missing shards), and the coordinator itself against real
 * in-process SweepServer daemons on real unix sockets — including
 * a node that is dead on arrival, a wedged node whose leases
 * expire and whose work is stolen, and a job that exhausts its
 * lease budget across the whole fleet. This binary provides its
 * own main() so isolation-enabled servers can re-exec it as a
 * sandboxed sweep worker.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "base/json.hh"
#include "base/strutil.hh"
#include "sim/experiment.hh"
#include "sim/fabric.hh"
#include "sim/journal.hh"
#include "sim/launcher.hh"
#include "sim/serve.hh"
#include "sim/supervisor.hh"

using namespace shelf;

namespace
{

/** A tiny two-thread job that simulates in a few milliseconds. */
validate::SweepJobSpec
tinySpec(uint64_t seed = 1, const std::string &fault = "")
{
    validate::SweepJobSpec spec;
    spec.core = baseCore64(2);
    spec.mixBenchmarks = { 0, 1 };
    spec.warmupCycles = 100;
    spec.measureCycles = 400;
    spec.seed = seed;
    spec.fault = fault;
    return spec;
}

std::string
fullJson(const SystemResult &res)
{
    return res.toJson(JsonWriter::kFullPrecision);
}

/** Unique-per-test path stem, removed (with suffixes) on exit. */
class TempStem
{
  public:
    explicit TempStem(const char *tag)
        : path_(csprintf("/tmp/shelfsim_test_fabric_%s_%d", tag,
                         static_cast<int>(getpid())))
    {
        cleanup();
    }

    ~TempStem() { cleanup(); }

    const std::string &path() const { return path_; }

    std::string sub(const std::string &suffix) const
    {
        return path_ + suffix;
    }

  private:
    void cleanup()
    {
        std::string cmd = "rm -f " + path_ + "*";
        (void)system(cmd.c_str());
    }

    std::string path_;
};

void
writeFile(const std::string &path, const std::string &content)
{
    FILE *f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr) << path;
    fputs(content.c_str(), f);
    fclose(f);
}

std::string
readFile(const std::string &path)
{
    FILE *f = fopen(path.c_str(), "r");
    EXPECT_NE(f, nullptr) << path;
    if (!f)
        return "";
    std::string out;
    char buf[4096];
    size_t got;
    while ((got = fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, got);
    fclose(f);
    return out;
}

/** A started in-process serve daemon on a unique socket. */
class TestServer
{
  public:
    TestServer(const std::string &socketPath, double jobDelay = 0)
    {
        ServeOptions opt;
        opt.socketPath = socketPath;
        opt.executors = 2;
        opt.jobDelaySeconds = jobDelay;
        server = std::make_unique<SweepServer>(opt);
        std::string err;
        started = server->start(&err);
        EXPECT_TRUE(started) << err;
    }

    ~TestServer()
    {
        if (server)
            server->stop();
    }

    SweepServer &get() { return *server; }

  private:
    std::unique_ptr<SweepServer> server;
    bool started = false;
};

FabricOptions
twoNodeOptions(const TempStem &stem)
{
    FabricOptions fab;
    fab.nodes = { { "alpha", stem.sub(".a.sock") },
                  { "beta", stem.sub(".b.sock") } };
    fab.backoffSeconds = 0.01;
    return fab;
}

} // namespace

TEST(FabricOptions, ParseNodeListAcceptsAndRejects)
{
    std::vector<FabricNode> nodes;
    std::string err;
    ASSERT_TRUE(FabricOptions::parseNodeList(
        "a=/tmp/a.sock,b=/tmp/b.sock", nodes, err))
        << err;
    ASSERT_EQ(nodes.size(), 2u);
    EXPECT_EQ(nodes[0].name, "a");
    EXPECT_EQ(nodes[0].socketPath, "/tmp/a.sock");
    EXPECT_EQ(nodes[1].name, "b");

    for (const char *bad : {
             "",                       // empty list
             "a=/tmp/a.sock,",         // trailing empty entry
             "noequals",               // not name=socket
             "=/tmp/a.sock",           // empty name
             "a=",                     // empty socket
             "a=/tmp/a.sock,a=/tmp/b", // duplicate name
         }) {
        err.clear();
        EXPECT_FALSE(FabricOptions::parseNodeList(bad, nodes, err))
            << "accepted: " << bad;
        EXPECT_FALSE(err.empty()) << "no message for: " << bad;
    }
}

TEST(FabricOptions, ShardPathAppendsTheNodeName)
{
    EXPECT_EQ(FabricCoordinator::shardPath("/tmp/j.jsonl", "alpha"),
              "/tmp/j.jsonl.alpha");
}

TEST(LeaseRecord, RoundTripsAndClassifies)
{
    validate::LeaseRecord lease;
    lease.key = tinySpec(3).toJson();
    lease.node = "alpha";
    lease.seq = 7;
    lease.issuedUnix = 1000.5;
    lease.deadlineUnix = 1030.5;

    std::string json = lease.toJson();
    EXPECT_NE(json.find("\"lease\":\"sweep-lease\""),
              std::string::npos);

    validate::LeaseRecord back;
    std::string err;
    ASSERT_TRUE(validate::tryLeaseRecordFromJson(json, back, err))
        << err;
    EXPECT_EQ(back.key, lease.key);
    EXPECT_EQ(back.node, "alpha");
    EXPECT_EQ(back.seq, 7u);
    EXPECT_DOUBLE_EQ(back.issuedUnix, 1000.5);
    EXPECT_DOUBLE_EQ(back.deadlineUnix, 1030.5);

    JsonValue doc = parseJson(json);
    EXPECT_TRUE(validate::isLeaseRecord(doc));
    JsonValue notLease = parseJson("{\"key\":\"k\",\"status\":\"ok\"}");
    EXPECT_FALSE(validate::isLeaseRecord(notLease));

    // Ordinary journal loading skips leases: a lease with no
    // finished record means "re-run this job", not "done".
    TempStem stem("lease_skip");
    writeFile(stem.sub(".jsonl"), json + "\n");
    auto loaded = loadJournal(stem.sub(".jsonl"));
    EXPECT_TRUE(loaded.empty());
}

TEST(JournalMerge, LastWinsDropsLeasesAndSkipsTornLines)
{
    TempStem stem("merge");
    validate::LeaseRecord lease;
    lease.key = "job-a";
    lease.node = "alpha";

    // Shard 1: a lease for job-a, a stale finished record for
    // job-a, and a finished record for job-b.
    writeFile(stem.sub(".1"),
              lease.toJson() + "\n" +
                  "{\"key\":\"job-a\",\"status\":\"quarantined\","
                  "\"attempts\":1}\n" +
                  "{\"key\":\"job-b\",\"status\":\"ok\","
                  "\"result\":\"{}\"}\n");
    // Shard 2: the newer job-a record (re-run after the lease
    // expired elsewhere) and a torn trailing line.
    writeFile(stem.sub(".2"),
              "{\"key\":\"job-a\",\"status\":\"ok\","
              "\"result\":\"{}\"}\n" +
                  std::string("{\"key\":\"job-c\",\"status"));

    JournalMergeStats stats;
    std::string err;
    ASSERT_TRUE(mergeJournals(
        { stem.sub(".1"), stem.sub(".2"), stem.sub(".missing") },
        stem.sub(".out"), stats, err))
        << err;
    EXPECT_EQ(stats.inputs, 3u);
    EXPECT_EQ(stats.jobs, 2u);
    EXPECT_EQ(stats.superseded, 1u);
    EXPECT_EQ(stats.leases, 1u);
    EXPECT_EQ(stats.torn, 1u);

    // First-seen key order, winning lines byte-identical to their
    // inputs, leases and torn lines gone.
    EXPECT_EQ(readFile(stem.sub(".out")),
              "{\"key\":\"job-a\",\"status\":\"ok\","
              "\"result\":\"{}\"}\n"
              "{\"key\":\"job-b\",\"status\":\"ok\","
              "\"result\":\"{}\"}\n");

    // The merged journal is loadable and complete.
    auto loaded = loadJournal(stem.sub(".out"));
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.count("job-a"), 1u);
    EXPECT_EQ(loaded.at("job-a").status, "ok");
}

TEST(JournalMerge, RefusesToOverwriteAnInput)
{
    TempStem stem("merge_self");
    writeFile(stem.sub(".1"), "");
    JournalMergeStats stats;
    std::string err;
    EXPECT_FALSE(mergeJournals({ stem.sub(".1") }, stem.sub(".1"),
                               stats, err));
    EXPECT_FALSE(err.empty());
}

TEST(Fabric, TwoNodesSplitASweepByteIdentically)
{
    TempStem stem("two_node");
    TestServer a(stem.sub(".a.sock"));
    TestServer b(stem.sub(".b.sock"));

    std::vector<validate::SweepJobSpec> jobs;
    for (uint64_t s = 1; s <= 6; ++s)
        jobs.push_back(tinySpec(s));

    FabricOptions fab = twoNodeOptions(stem);
    fab.journalPath = stem.sub(".jsonl");
    FabricCoordinator coord(fab);
    auto outcomes = coord.run(jobs);

    ASSERT_EQ(outcomes.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].stderrTail;
        // The result crossed the wire as JSON and must come back
        // bit-identical to an in-process run.
        EXPECT_EQ(fullJson(outcomes[i].result),
                  fullJson(runSweepJob(jobs[i])))
            << "job " << i;
    }

    // Every job completed exactly once, somewhere in the fleet.
    const auto &reps = coord.nodeReports();
    ASSERT_EQ(reps.size(), 2u);
    EXPECT_EQ(reps[0].jobsCompleted + reps[1].jobsCompleted,
              jobs.size());
    EXPECT_FALSE(reps[0].dead);
    EXPECT_FALSE(reps[1].dead);

    // The merged shards resume the sweep with zero re-execution.
    JournalMergeStats stats;
    std::string err;
    ASSERT_TRUE(mergeJournals(
        { FabricCoordinator::shardPath(fab.journalPath, "alpha"),
          FabricCoordinator::shardPath(fab.journalPath, "beta") },
        fab.journalPath, stats, err))
        << err;
    EXPECT_EQ(stats.jobs, jobs.size());
    EXPECT_EQ(stats.leases, jobs.size());

    SupervisorOptions sup;
    sup.journalPath = fab.journalPath;
    sup.resume = true;
    auto replayed = SweepSupervisor(sup).run(jobs);
    for (size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(replayed[i].ok());
        EXPECT_TRUE(replayed[i].fromJournal) << "job " << i;
        EXPECT_EQ(fullJson(replayed[i].result),
                  fullJson(outcomes[i].result));
    }
}

TEST(Fabric, FabricResumesFromItsOwnShards)
{
    TempStem stem("resume");
    std::vector<validate::SweepJobSpec> jobs = { tinySpec(1),
                                                 tinySpec(2),
                                                 tinySpec(3) };
    FabricOptions fab = twoNodeOptions(stem);
    fab.journalPath = stem.sub(".jsonl");
    {
        TestServer a(stem.sub(".a.sock"));
        TestServer b(stem.sub(".b.sock"));
        FabricCoordinator coord(fab);
        auto first = coord.run(jobs);
        ASSERT_TRUE(first[0].ok() && first[1].ok() &&
                    first[2].ok());
    }

    // No servers this time: if resume re-executed anything, every
    // launch would fail. It must replay from the shards alone.
    fab.resume = true;
    FabricCoordinator again(fab);
    auto second = again.run(jobs);
    ASSERT_EQ(second.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(second[i].ok()) << second[i].stderrTail;
        EXPECT_TRUE(second[i].fromJournal);
    }
}

TEST(Fabric, DeadOnArrivalNodeRetiresAndTheOtherAbsorbsTheWork)
{
    TempStem stem("doa");
    // Alpha is slightly slowed so the queue is still non-empty when
    // beta comes back for its second (fatal) health-gate attempt.
    TestServer a(stem.sub(".a.sock"), /*jobDelay=*/0.05);
    // Node beta's socket never exists: every connect fails, the
    // health gate trips, and after nodeRetries + 1 consecutive
    // failures the node retires without ever holding a job.
    std::vector<validate::SweepJobSpec> jobs = { tinySpec(1),
                                                 tinySpec(2),
                                                 tinySpec(3),
                                                 tinySpec(4) };
    FabricOptions fab = twoNodeOptions(stem);
    fab.nodeRetries = 1;
    fab.heartbeatSeconds = 0.5;
    FabricCoordinator coord(fab);
    auto outcomes = coord.run(jobs);

    ASSERT_EQ(outcomes.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].stderrTail;
        EXPECT_EQ(fullJson(outcomes[i].result),
                  fullJson(runSweepJob(jobs[i])));
    }
    const auto &reps = coord.nodeReports();
    EXPECT_EQ(reps[0].jobsCompleted, jobs.size());
    EXPECT_FALSE(reps[0].dead);
    EXPECT_EQ(reps[1].jobsCompleted, 0u);
    EXPECT_TRUE(reps[1].dead);
    EXPECT_GE(reps[1].transportFailures, 1u);
}

TEST(Fabric, WedgedNodeLeasesExpireAndItsWorkIsStolen)
{
    TempStem stem("wedged");
    TestServer a(stem.sub(".a.sock"));
    // Node beta accepts jobs but sits on them far past the lease:
    // the coordinator's read deadline fires, the lease expires, the
    // job goes back on the queue, and alpha steals it. (The delay
    // is modest because server teardown drains in-flight jobs.)
    TestServer b(stem.sub(".b.sock"), /*jobDelay=*/3);

    std::vector<validate::SweepJobSpec> jobs = { tinySpec(1),
                                                 tinySpec(2),
                                                 tinySpec(3),
                                                 tinySpec(4) };
    FabricOptions fab = twoNodeOptions(stem);
    fab.leaseSeconds = 0.4;
    fab.nodeRetries = 0; // first expiry retires the wedged node
    fab.heartbeatSeconds = 0.5;
    FabricCoordinator coord(fab);
    auto outcomes = coord.run(jobs);

    ASSERT_EQ(outcomes.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].stderrTail;
        EXPECT_EQ(fullJson(outcomes[i].result),
                  fullJson(runSweepJob(jobs[i])));
    }
    const auto &reps = coord.nodeReports();
    // Alpha finished everything, including at least one job beta
    // held a lease on when its deadline expired.
    EXPECT_EQ(reps[0].jobsCompleted, jobs.size());
    EXPECT_TRUE(reps[1].dead);
    EXPECT_GE(reps[1].leaseExpiries, 1u);
}

TEST(Fabric, JobThatWedgesEveryNodeQuarantinesAsTimedOut)
{
    TempStem stem("poison");
    // Both nodes sit on every job forever; the single job burns a
    // lease on each distinct node, exhausts jobRetries, and
    // quarantines as timed out instead of hanging the sweep.
    TestServer a(stem.sub(".a.sock"), /*jobDelay=*/3);
    TestServer b(stem.sub(".b.sock"), /*jobDelay=*/3);

    FabricOptions fab = twoNodeOptions(stem);
    fab.leaseSeconds = 0.3;
    fab.jobRetries = 1;  // two distinct nodes exhaust the job
    fab.nodeRetries = 5; // nodes survive to grant the leases
    fab.heartbeatSeconds = 0.5;
    FabricCoordinator coord(fab);
    auto outcomes = coord.run({ tinySpec(1) });

    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok());
    EXPECT_TRUE(outcomes[0].timedOut);
    EXPECT_NE(outcomes[0].stderrTail.find("lease expired"),
              std::string::npos)
        << outcomes[0].stderrTail;
    EXPECT_GE(coord.nodeReports()[0].leaseExpiries +
                  coord.nodeReports()[1].leaseExpiries,
              2u);
}

TEST(Fabric, AllNodesDeadQuarantinesTheRemainingQueue)
{
    TempStem stem("all_dead");
    // Neither socket exists: both nodes retire on arrival and the
    // whole queue quarantines with an explicit error instead of
    // hanging.
    FabricOptions fab = twoNodeOptions(stem);
    fab.nodeRetries = 0;
    fab.heartbeatSeconds = 0.3;
    FabricCoordinator coord(fab);
    auto outcomes = coord.run({ tinySpec(1), tinySpec(2) });

    ASSERT_EQ(outcomes.size(), 2u);
    for (const auto &oc : outcomes) {
        EXPECT_FALSE(oc.ok());
        EXPECT_NE(oc.stderrTail.find("no live fabric nodes"),
                  std::string::npos)
            << oc.stderrTail;
    }
    EXPECT_TRUE(coord.nodeReports()[0].dead);
    EXPECT_TRUE(coord.nodeReports()[1].dead);
}

TEST(Fabric, ProgressCallbackSeesEveryJob)
{
    TempStem stem("progress");
    TestServer a(stem.sub(".a.sock"));
    TestServer b(stem.sub(".b.sock"));
    std::vector<validate::SweepJobSpec> jobs = { tinySpec(1),
                                                 tinySpec(2),
                                                 tinySpec(3) };
    FabricOptions fab = twoNodeOptions(stem);
    FabricCoordinator coord(fab);
    std::atomic<size_t> calls{0};
    coord.setProgressCallback(
        [&](size_t, const JobOutcome &) { ++calls; });
    coord.run(jobs);
    EXPECT_EQ(calls.load(), jobs.size());
}

int
main(int argc, char **argv)
{
    // This binary is its own sandboxed sweep worker: isolation-
    // enabled servers re-exec it as `test_fabric --worker '<spec>'`.
    if (int rc = 0; maybeRunSweepWorker(argc, argv, &rc))
        return rc;
    testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
