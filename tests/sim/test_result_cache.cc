/**
 * @file
 * Content-addressed result cache tests: canonical-key stability
 * (the cache contract is that formatting never changes identity and
 * semantics always do), pinned canonical bytes for known configs,
 * LRU bounds, and the disk tier's verify-on-load safety.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <dirent.h>

#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "base/strutil.hh"
#include "core/params.hh"
#include "sim/result_cache.hh"
#include "validate/config_json.hh"

using namespace shelf;

namespace
{

validate::SweepJobSpec
tinySpec(uint64_t seed = 1)
{
    validate::SweepJobSpec spec;
    spec.core = baseCore64(2);
    spec.mixBenchmarks = { 0, 1 };
    spec.warmupCycles = 100;
    spec.measureCycles = 400;
    spec.seed = seed;
    return spec;
}

/** Canonical key of a JSON document, asserting it parses. */
std::string
keyOf(const std::string &json)
{
    std::string key, err;
    EXPECT_TRUE(validate::tryCanonicalJobKey(json, key, err))
        << err;
    return key;
}

/** Unique-per-test cache directory, removed recursively on exit. */
class TempDir
{
  public:
    explicit TempDir(const char *tag)
        : path_(csprintf("/tmp/shelfsim_test_%s_%d", tag,
                         static_cast<int>(getpid())))
    {
        std::string cmd = "rm -rf " + path_;
        (void)system(cmd.c_str());
    }

    ~TempDir()
    {
        std::string cmd = "rm -rf " + path_;
        (void)system(cmd.c_str());
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace

TEST(CanonicalKey, SpecKeyEqualsItsOwnSerialization)
{
    validate::SweepJobSpec spec = tinySpec();
    EXPECT_EQ(validate::canonicalJobKey(spec), spec.toJson());
    // And re-canonicalizing the canonical form is a fixpoint.
    EXPECT_EQ(keyOf(spec.toJson()), spec.toJson());
}

TEST(CanonicalKey, FieldOrderDoesNotChangeIdentity)
{
    validate::SweepJobSpec spec = tinySpec();
    std::string canon = spec.toJson();
    // Hand-written document with top-level fields reordered.
    std::string reordered = csprintf(
        "{\"seed\":1,\"cycles\":400,\"warmup\":100,"
        "\"mix\":[0,1],\"core\":%s}",
        validate::coreParamsToJson(spec.core).c_str());
    EXPECT_EQ(keyOf(reordered), canon);
}

TEST(CanonicalKey, WhitespaceDoesNotChangeIdentity)
{
    validate::SweepJobSpec spec = tinySpec();
    std::string canon = spec.toJson();
    std::string spaced;
    for (char c : canon) {
        spaced += c;
        if (c == ',' || c == ':' || c == '{' || c == '[')
            spaced += "  \n\t";
    }
    EXPECT_EQ(keyOf(spaced), canon);
}

TEST(CanonicalKey, OmittedDefaultsDoNotChangeIdentity)
{
    // A document carrying only non-default fields keys identically
    // to one spelling every default out: defaults are materialized
    // before keying. CoreParams{} defaults to 4 threads, so the mix
    // needs 4 entries; warmup/cycles/seed all ride on defaults.
    validate::SweepJobSpec spec;
    spec.core = CoreParams{}; // all defaults
    spec.mixBenchmarks = { 0, 1, 2, 3 };
    std::string sparse = "{\"core\":{},\"mix\":[0,1,2,3]}";
    EXPECT_EQ(keyOf(sparse), spec.toJson());
}

TEST(CanonicalKey, SemanticChangesChangeIdentity)
{
    validate::SweepJobSpec spec = tinySpec(1);
    std::string base = validate::canonicalJobKey(spec);

    validate::SweepJobSpec other = tinySpec(2);
    EXPECT_NE(validate::canonicalJobKey(other), base);

    other = tinySpec(1);
    other.measureCycles += 1;
    EXPECT_NE(validate::canonicalJobKey(other), base);

    other = tinySpec(1);
    other.mixBenchmarks = { 1, 0 };
    EXPECT_NE(validate::canonicalJobKey(other), base);

    other = tinySpec(1);
    other.core.robEntries += 1;
    EXPECT_NE(validate::canonicalJobKey(other), base);
}

TEST(CanonicalKey, MalformedInputIsRejectedNotCrashed)
{
    std::string key, err;
    // NaN/infinity are not JSON and must be rejected cleanly — a
    // non-finite cycle count keying "successfully" would poison the
    // cache with an unreproducible entry.
    for (const char *bad :
         { "", "{", "not json", "[1,2]",
           "{\"core\":{},\"mix\":[0,1,2,3],\"seed\":nan}",
           "{\"core\":{},\"mix\":[0,1,2,3],\"seed\":inf}",
           "{\"core\":{},\"mix\":[0]}", // mix size != threads
           "{\"core\":{},\"mix\":[0,1,2,3],\"bogusKey\":1}",
           "{\"core\":{\"robEntries\":\"big\"},\"mix\":[0,1,2,3]}" }) {
        err.clear();
        EXPECT_FALSE(validate::tryCanonicalJobKey(bad, key, err))
            << "accepted: " << bad;
        EXPECT_FALSE(err.empty()) << "no message for: " << bad;
    }
}

TEST(CanonicalKey, PinnedBytesForKnownConfigs)
{
    // Regression pin: the FNV-1a of the canonical bytes for the four
    // named configurations. These values are the on-disk cache file
    // identities — if one of these changes, every existing cache
    // directory silently cold-starts, and old journal/cache entries
    // no longer match. Bump them only with a deliberate format
    // change (and say so in DESIGN.md's cache-key contract).
    auto pin = [](const CoreParams &core) {
        validate::SweepJobSpec spec;
        spec.core = core;
        spec.mixBenchmarks = { 0, 1, 2, 3 };
        spec.warmupCycles = 4000;
        spec.measureCycles = 16000;
        spec.seed = 1;
        return fnv1a64(validate::canonicalJobKey(spec));
    };
    EXPECT_EQ(pin(baseCore64(4)), 0xcc99b71796b26f59ULL);
    EXPECT_EQ(pin(baseCore128(4)), 0xc5076a62028a1536ULL);
    EXPECT_EQ(pin(shelfCore(4, false)), 0x18858d713d25b896ULL);
    EXPECT_EQ(pin(shelfCore(4, true)), 0x7c3cc79cf55db931ULL);
}

TEST(ResultCache, HitMissAndOverwrite)
{
    ResultCache cache(8);
    std::string v;
    EXPECT_FALSE(cache.lookup("k1", v));
    cache.insert("k1", "v1");
    ASSERT_TRUE(cache.lookup("k1", v));
    EXPECT_EQ(v, "v1");
    cache.insert("k1", "v2");
    ASSERT_TRUE(cache.lookup("k1", v));
    EXPECT_EQ(v, "v2");
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsedAtBound)
{
    ResultCache cache(2);
    cache.insert("a", "va");
    cache.insert("b", "vb");
    std::string v;
    // Touch "a" so "b" is now least recently used.
    ASSERT_TRUE(cache.lookup("a", v));
    cache.insert("c", "vc");
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(cache.lookup("a", v));
    EXPECT_TRUE(cache.lookup("c", v));
    EXPECT_FALSE(cache.lookup("b", v));
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, BoundNeverExceededUnderChurn)
{
    ResultCache cache(4);
    for (int i = 0; i < 100; ++i) {
        cache.insert(csprintf("key%d", i), csprintf("val%d", i));
        EXPECT_LE(cache.size(), 4u);
    }
    EXPECT_EQ(cache.stats().evictions, 96u);
}

TEST(ResultCache, DiskTierSurvivesRestartAndEviction)
{
    TempDir dir("result_cache_disk");
    std::string v;
    {
        ResultCache cache(2, dir.path());
        cache.insert("a", "va");
        cache.insert("b", "vb");
        cache.insert("c", "vc"); // evicts "a" from memory only
        ASSERT_TRUE(cache.lookup("a", v));
        EXPECT_EQ(v, "va");
        EXPECT_EQ(cache.stats().diskHits, 1u);
    }
    // A fresh cache on the same directory — e.g. a restarted serve
    // daemon — sees every entry.
    ResultCache fresh(8, dir.path());
    for (const char *k : { "a", "b", "c" }) {
        v.clear();
        ASSERT_TRUE(fresh.lookup(k, v)) << k;
        EXPECT_EQ(v, csprintf("v%s", k));
    }
    EXPECT_EQ(fresh.stats().diskHits, 3u);
    // Promoted entries answer from memory next time.
    ASSERT_TRUE(fresh.lookup("c", v));
    EXPECT_EQ(fresh.stats().diskHits, 3u);
}

TEST(ResultCache, DiskEntryWithWrongKeyIsAMissNotAWrongResult)
{
    TempDir dir("result_cache_collide");
    ResultCache cache(4, dir.path());
    cache.insert("real-key", "real-value");

    // Simulate an FNV collision: a second key whose file we forge
    // at the path the cache would probe. The stored key must be
    // verified on load, so the forged entry reads as a miss.
    ResultCache probe(4, dir.path());
    std::string path = probe.diskPath("other-key");
    ASSERT_FALSE(path.empty());
    {
        std::ofstream f(path);
        f << "{\"key\":\"not-other-key\",\"value\":\"poison\"}";
    }
    std::string v;
    EXPECT_FALSE(probe.lookup("other-key", v));

    // Torn/corrupt files are also misses, not crashes.
    {
        std::ofstream f(path);
        f << "{\"key\":\"other-";
    }
    EXPECT_FALSE(probe.lookup("other-key", v));
}

TEST(ResultCache, ConcurrentWritersPublishAtomicallyAndLeaveNoTemps)
{
    // Many writers (think: one serve daemon's executor pool, or
    // several daemons sharing a cache directory across a fabric)
    // storing overlapping keys at once. Publication is
    // write-to-unique-temp + rename, with O_EXCL temp creation, so
    // no two writers can interleave into one file: every published
    // entry is complete and correct, and no orphaned temporaries
    // survive.
    TempDir dir("result_cache_race");
    constexpr int kThreads = 8;
    constexpr int kKeys = 16;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            ResultCache cache(2, dir.path());
            for (int k = 0; k < kKeys; ++k) {
                cache.insert(csprintf("key%d", k),
                             csprintf("value-%d", k));
            }
        });
    }
    for (auto &t : threads)
        t.join();

    // Every entry reads back complete from a fresh cache...
    ResultCache fresh(kKeys * 2, dir.path());
    std::string v;
    for (int k = 0; k < kKeys; ++k) {
        ASSERT_TRUE(fresh.lookup(csprintf("key%d", k), v)) << k;
        EXPECT_EQ(v, csprintf("value-%d", k));
    }

    // ...and the directory holds exactly the published cells, no
    // leftover temp files from the racing writers.
    size_t cells = 0, temps = 0, other = 0;
    DIR *d = opendir(dir.path().c_str());
    ASSERT_NE(d, nullptr);
    while (struct dirent *e = readdir(d)) {
        std::string name = e->d_name;
        if (name == "." || name == "..")
            continue;
        if (name.find(".tmp.") != std::string::npos)
            ++temps;
        else if (name.rfind("cell-", 0) == 0)
            ++cells;
        else
            ++other;
    }
    closedir(d);
    EXPECT_EQ(cells, static_cast<size_t>(kKeys));
    EXPECT_EQ(temps, 0u);
    EXPECT_EQ(other, 0u);
}

TEST(ResultCache, StaleTempFileNeverPoisonsAPublish)
{
    // A writer SIGKILLed between temp-write and rename leaves a
    // stale temp behind. A later writer of the same cell must not
    // trip over it (O_EXCL just skips to the next unique name), and
    // the stale temp is never visible to lookups.
    TempDir dir("result_cache_stale");
    ResultCache cache(4, dir.path());
    cache.insert("seed", "x"); // creates the directory
    std::string cellPath = cache.diskPath("victim-key");
    ASSERT_FALSE(cellPath.empty());
    {
        // Forge temps with the exact prefix the publisher uses.
        std::ofstream f(cellPath + csprintf(".tmp.%d.0",
                                            static_cast<int>(
                                                getpid())));
        f << "{\"torn";
    }
    cache.insert("victim-key", "good-value");
    std::string v;
    ResultCache fresh(4, dir.path());
    ASSERT_TRUE(fresh.lookup("victim-key", v));
    EXPECT_EQ(v, "good-value");
}

TEST(ResultCache, ValueBytesRoundTripExactly)
{
    TempDir dir("result_cache_bytes");
    // Values with every character class that JSON escaping touches:
    // quotes, backslashes, control bytes, and a 17-digit double.
    std::string value =
        "{\"x\":2.2250738585072014e-308,\"s\":\"a\\\"b\\\\c\\n\"}";
    {
        ResultCache cache(4, dir.path());
        cache.insert("k", value);
    }
    ResultCache fresh(4, dir.path());
    std::string v;
    ASSERT_TRUE(fresh.lookup("k", v));
    EXPECT_EQ(v, value);
}

// ---------------------------------------------------------------
// Trace-backed job identity: cells that replay a trace file are
// keyed by the trace's *content*, never its path.
// ---------------------------------------------------------------

#include "workload/spec2006.hh"
#include "workload/trace_io.hh"

namespace
{

validate::SweepJobSpec
traceSpec(const std::string &path)
{
    validate::SweepJobSpec spec;
    spec.core = baseCore64(1);
    spec.warmupCycles = 100;
    spec.measureCycles = 400;
    spec.seed = 1;
    spec.tracePaths = { path };
    std::string err;
    EXPECT_TRUE(validate::fillTraceHashes(spec, err)) << err;
    return spec;
}

std::string
writeTinyTrace(const std::string &path, uint64_t seed)
{
    Trace t = TraceGenerator(spec2006Profile("mcf"), seed, 0)
        .generate(200);
    std::string err;
    EXPECT_TRUE(writeTrace2File(t, path, {}, &err)) << err;
    return path;
}

} // namespace

TEST(CanonicalKey, TraceContentEntersTheKey)
{
    TempDir dir("trace_key");
    mkdir(dir.path().c_str(), 0755);
    std::string p = writeTinyTrace(dir.path() + "/a.shlftrc", 11);

    validate::SweepJobSpec spec = traceSpec(p);
    std::string base = validate::canonicalJobKey(spec);
    EXPECT_NE(base.find("traceHashes"), std::string::npos) << base;

    // A renamed byte-identical copy keys identically: the path is
    // carried for the worker, but identity is the hash.
    std::string copy = dir.path() + "/renamed.shlftrc";
    ASSERT_EQ(system(("cp " + p + " " + copy).c_str()), 0);
    validate::SweepJobSpec spec2 = traceSpec(copy);
    EXPECT_EQ(spec2.traceHashes, spec.traceHashes);

    // An in-place edit changes the key (warm caches must miss).
    {
        std::fstream f(p, std::ios::in | std::ios::out |
                              std::ios::binary);
        f.seekp(30);
        f.put('\x55');
    }
    validate::SweepJobSpec edited = traceSpec(p);
    EXPECT_NE(edited.traceHashes, spec.traceHashes);
    EXPECT_NE(validate::canonicalJobKey(edited), base);
}

TEST(CanonicalKey, GeneratorSpecsCarryNoTraceFields)
{
    // Generator-backed specs must serialize byte-identically to
    // before trace support existed, or every warm cache invalidates.
    std::string json = tinySpec().toJson();
    EXPECT_EQ(json.find("traces"), std::string::npos) << json;
    EXPECT_EQ(json.find("traceHashes"), std::string::npos) << json;
}

TEST(CanonicalKey, UnreadableTracePathIsRejectedNotCrashed)
{
    validate::SweepJobSpec spec;
    spec.core = baseCore64(1);
    spec.tracePaths = { "/nonexistent/missing.shlftrc" };
    std::string key, err;
    EXPECT_FALSE(validate::tryCanonicalJobKey(spec.toJson(), key,
                                              err));
    EXPECT_NE(err.find("/nonexistent/missing.shlftrc"),
              std::string::npos) << err;
}
