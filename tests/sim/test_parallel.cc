/**
 * @file
 * Tests for the parallel experiment runner: index coverage, the
 * serial inline path, nested-call behavior, determinism of a real
 * mix x config sweep against the serial reference path, and the
 * thread safety of STReference under concurrent ipc() calls.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/parallel.hh"
#include "sim/system.hh"

using namespace shelf;

namespace
{

SimControls
smallControls()
{
    SimControls ctl;
    ctl.warmupCycles = 500;
    ctl.measureCycles = 2000;
    return ctl;
}

} // namespace

TEST(RunJobs, CoversEveryIndexExactlyOnce)
{
    const size_t n = 100;
    std::vector<std::atomic<int>> hits(n);
    for (auto &h : hits)
        h.store(0);
    runJobs(n, [&](size_t i) { hits[i].fetch_add(1); }, 4);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(RunJobs, OneJobRunsInlineInOrder)
{
    std::vector<size_t> order;
    runJobs(10, [&](size_t i) {
        EXPECT_FALSE(insideWorker());
        order.push_back(i); // no lock needed: serial path
    }, 1);
    ASSERT_EQ(order.size(), 10u);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(RunJobs, NestedCallsRunInline)
{
    std::atomic<int> inner{ 0 };
    std::atomic<bool> sawWorkerFlag{ false };
    runJobs(4, [&](size_t) {
        if (insideWorker())
            sawWorkerFlag.store(true);
        // Must not deadlock or re-enter the pool.
        runJobs(3, [&](size_t) { inner.fetch_add(1); }, 4);
    }, 4);
    EXPECT_EQ(inner.load(), 12);
    if (defaultJobs() > 1) {
        EXPECT_TRUE(sawWorkerFlag.load());
    }
}

TEST(RunJobs, ZeroJobsIsANoop)
{
    bool ran = false;
    runJobs(0, [&](size_t) { ran = true; }, 4);
    EXPECT_FALSE(ran);
}

TEST(RunJobs, SetDefaultJobsOverrides)
{
    setDefaultJobs(3);
    EXPECT_EQ(defaultJobs(), 3u);
    setDefaultJobs(0); // restore the environment-derived default
    EXPECT_GE(defaultJobs(), 1u);
}

TEST(ParallelMap, ResultsAreInputOrdered)
{
    auto out = parallelMap(
        64, [](size_t i) { return i * i; }, 4);
    ASSERT_EQ(out.size(), 64u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(RunJobsCancellable, AllTrueRunsEverything)
{
    std::atomic<size_t> ran{0};
    size_t started = runJobsCancellable(100, [&](size_t) {
        ran.fetch_add(1);
        return true;
    }, 4);
    EXPECT_EQ(started, 100u);
    EXPECT_EQ(ran.load(), 100u);
}

TEST(RunJobsCancellable, FalseStopsDispatchingNewIndices)
{
    // Serial path (jobs = 1): indices run in order, so a false at
    // index 10 must leave exactly 11 executed.
    std::atomic<size_t> ran{0};
    size_t started = runJobsCancellable(100, [&](size_t i) {
        ran.fetch_add(1);
        return i != 10;
    }, 1);
    EXPECT_EQ(started, 11u);
    EXPECT_EQ(ran.load(), 11u);
}

TEST(RunJobsCancellable, ParallelCancellationIsBounded)
{
    // With workers racing, jobs already started may finish after
    // the cancellation, but the count can never reach all of a
    // large batch when the very first index cancels.
    std::atomic<size_t> ran{0};
    size_t started = runJobsCancellable(100000, [&](size_t i) {
        ran.fetch_add(1);
        return i != 0;
    }, 4);
    EXPECT_EQ(started, ran.load());
    EXPECT_GE(started, 1u);
    EXPECT_LT(started, 100000u);
}

TEST(RunJobsCancellable, ZeroJobsIsANoop)
{
    size_t started = runJobsCancellable(
        0, [](size_t) { return true; }, 4);
    EXPECT_EQ(started, 0u);
}

TEST(ParallelSweep, BitIdenticalToSerialPath)
{
    // The acceptance property behind SHELFSIM_JOBS determinism: a
    // 4-mix x 2-config sweep fanned across workers must reproduce
    // the serial path's results byte for byte.
    SimControls ctl = smallControls();
    auto mixes = standardMixes(2);
    mixes.resize(4);
    std::vector<CoreParams> configs = { baseCore64(2),
                                        shelfCore(2, true) };

    auto sweep = [&](unsigned jobs) {
        std::vector<std::string> out;
        for (const auto &cfg : configs) {
            auto results = parallelMap(
                mixes.size(),
                [&](size_t i) {
                    return runMix(cfg, mixes[i], ctl).toJson();
                },
                jobs);
            out.insert(out.end(), results.begin(), results.end());
        }
        return out;
    };

    auto serial = sweep(1);
    auto parallel = sweep(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "sim " << i;
}

TEST(STReferenceThreaded, ConcurrentIpcIsSafeAndConsistent)
{
    // Hammer one STReference from many workers asking for a handful
    // of benchmarks: every caller must observe the same value a
    // fresh serial instance computes, with no duplicated or torn
    // cache entries.
    SimControls ctl = smallControls();
    const size_t nbench = 4;
    STReference shared(ctl);
    std::vector<double> seen(32);
    runJobs(seen.size(), [&](size_t i) {
        seen[i] = shared.ipc(i % nbench);
    }, 8);

    STReference serial(ctl);
    for (size_t i = 0; i < seen.size(); ++i) {
        EXPECT_GT(seen[i], 0.0);
        EXPECT_EQ(seen[i], serial.ipc(i % nbench)) << "call " << i;
    }
}

TEST(STReferenceThreaded, PrecomputeMatchesLazy)
{
    SimControls ctl = smallControls();
    auto mixes = standardMixes(2);
    mixes.resize(3);

    STReference eager(ctl);
    eager.precompute(mixes, 4);
    STReference lazy(ctl);
    for (const auto &mix : mixes)
        for (size_t idx : mix.benchmarks)
            EXPECT_EQ(eager.ipc(idx), lazy.ipc(idx)) << idx;
}
