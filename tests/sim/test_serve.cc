/**
 * @file
 * Sweep-service integration tests against a real SweepServer on a
 * real unix socket: request parsing/rejection, concurrent clients
 * getting byte-identical results, provable in-flight coalescing,
 * disconnect-mid-batch robustness, and clean shutdown. This binary
 * provides its own main() so it can serve as its own sandboxed
 * sweep worker if a test enables isolation.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "base/json.hh"
#include "base/net.hh"
#include "base/strutil.hh"
#include "sim/serve.hh"
#include "sim/supervisor.hh"

using namespace shelf;

namespace
{

/** A tiny two-thread job that simulates in a few milliseconds. */
validate::SweepJobSpec
tinySpec(uint64_t seed = 1, const std::string &fault = "")
{
    validate::SweepJobSpec spec;
    spec.core = baseCore64(2);
    spec.mixBenchmarks = { 0, 1 };
    spec.warmupCycles = 100;
    spec.measureCycles = 400;
    spec.seed = seed;
    spec.fault = fault;
    return spec;
}

/** Server on a unique socket, torn down with the fixture. */
class ServeTest : public ::testing::Test
{
  protected:
    void
    startServer(ServeOptions opt = {})
    {
        opt.socketPath = csprintf("/tmp/shelfsim_test_serve_%d_%s",
                                  static_cast<int>(getpid()),
                                  testName().c_str());
        if (!opt.executors)
            opt.executors = 2;
        server = std::make_unique<SweepServer>(opt);
        std::string err;
        ASSERT_TRUE(server->start(&err)) << err;
        socketPath = opt.socketPath;
    }

    void
    TearDown() override
    {
        if (server)
            server->stop();
    }

    static std::string
    testName()
    {
        return ::testing::UnitTest::GetInstance()
            ->current_test_info()
            ->name();
    }

    std::unique_ptr<SweepServer> server;
    std::string socketPath;
};

/** Raw-socket helper: send one line, read reply lines. */
int
rawConnect(const std::string &path)
{
    std::string err;
    int fd = connectUnix(path, err);
    EXPECT_GE(fd, 0) << err;
    return fd;
}

std::string
rawRequest(int fd, const std::string &line)
{
    EXPECT_TRUE(writeAll(fd, line + "\n"));
    LineReader reader(fd, kMaxServeFrameBytes);
    std::string reply;
    EXPECT_EQ(reader.readLine(reply), LineReader::Status::Line);
    return reply;
}

} // namespace

TEST(ParseServeRequest, AcceptsTheThreeControlCommands)
{
    ServeRequest req;
    std::string err;
    ASSERT_TRUE(parseServeRequest("{\"cmd\":\"ping\"}", req, err))
        << err;
    EXPECT_EQ(req.cmd, ServeRequest::Cmd::Ping);
    ASSERT_TRUE(parseServeRequest("{\"cmd\":\"stats\"}", req, err));
    EXPECT_EQ(req.cmd, ServeRequest::Cmd::Stats);
    ASSERT_TRUE(
        parseServeRequest("{\"cmd\":\"shutdown\"}", req, err));
    EXPECT_EQ(req.cmd, ServeRequest::Cmd::Shutdown);
}

TEST(ParseServeRequest, AcceptsARunBatchAndCanonicalizesKeys)
{
    validate::SweepJobSpec spec = tinySpec();
    std::string frame = csprintf(
        "{\"cmd\":\"run\",\"id\":\"b1\",\"jobs\":[%s,%s]}",
        spec.toJson().c_str(), spec.toJson().c_str());
    ServeRequest req;
    std::string err;
    ASSERT_TRUE(parseServeRequest(frame, req, err)) << err;
    EXPECT_EQ(req.cmd, ServeRequest::Cmd::Run);
    EXPECT_EQ(req.id, "b1");
    ASSERT_EQ(req.jobs.size(), 2u);
    ASSERT_EQ(req.keys.size(), 2u);
    EXPECT_EQ(req.keys[0], validate::canonicalJobKey(spec));
    EXPECT_EQ(req.keys[0], req.keys[1]);
}

TEST(ParseServeRequest, RejectsGarbageCleanly)
{
    ServeRequest req;
    std::string err;
    for (const char *bad : {
             "",
             "not json",
             "[]",
             "{}",
             "{\"cmd\":\"fly\"}",
             "{\"cmd\":42}",
             "{\"cmd\":\"ping\",\"extra\":1}",
             "{\"cmd\":\"ping\",\"jobs\":[]}",
             "{\"cmd\":\"run\"}",
             "{\"cmd\":\"run\",\"jobs\":{}}",
             "{\"cmd\":\"run\",\"jobs\":[]}",
             "{\"cmd\":\"run\",\"jobs\":[{}]}",
             "{\"cmd\":\"run\",\"jobs\":[{\"core\":{},"
             "\"mix\":[99999,0,0,0]}]}",
         }) {
        err.clear();
        EXPECT_FALSE(parseServeRequest(bad, req, err))
            << "accepted: " << bad;
        EXPECT_FALSE(err.empty()) << "no message for: " << bad;
    }
}

TEST(ParseServeRequest, EnforcesTheFrameCap)
{
    std::string huge(kMaxServeFrameBytes + 1, 'a');
    ServeRequest req;
    std::string err;
    EXPECT_FALSE(parseServeRequest(huge, req, err));
    EXPECT_NE(err.find("cap"), std::string::npos);
}

TEST(ParseServeRequest, FaultingSpecsNeedExplicitOptIn)
{
    std::string frame = csprintf("{\"cmd\":\"run\",\"jobs\":[%s]}",
                                 tinySpec(1, "crash").toJson()
                                     .c_str());
    ServeRequest req;
    std::string err;
    EXPECT_FALSE(parseServeRequest(frame, req, err, false));
    EXPECT_NE(err.find("fault"), std::string::npos);
    EXPECT_TRUE(parseServeRequest(frame, req, err, true)) << err;
}

TEST_F(ServeTest, PingStatsAndErrorRepliesOverTheSocket)
{
    startServer();
    ServeClient client;
    std::string err;
    ASSERT_TRUE(client.connect(socketPath, &err)) << err;
    EXPECT_TRUE(client.ping(&err)) << err;

    std::string stats;
    ASSERT_TRUE(client.stats(stats, &err)) << err;
    JsonValue doc;
    ASSERT_TRUE(tryParseJson(stats, doc));
    const JsonValue *s = doc.find("stats");
    ASSERT_NE(s, nullptr);
    for (const char *key :
         { "serve.cache_hit", "serve.cache_miss",
           "serve.cache_coalesced", "serve.jobs_executed",
           "serve.clients_active", "serve.cache_entries" }) {
        EXPECT_NE(s->find(key), nullptr) << key;
    }
    EXPECT_EQ(s->find("serve.clients_active")->asU64(), 1u);

    // A malformed frame draws an error reply and the connection
    // survives to serve the next request.
    int fd = rawConnect(socketPath);
    std::string reply = rawRequest(fd, "this is not json");
    EXPECT_NE(reply.find("\"error\""), std::string::npos);
    reply = rawRequest(fd, "{\"cmd\":\"ping\"}");
    EXPECT_NE(reply.find("\"ok\""), std::string::npos);
    ::close(fd);
    EXPECT_EQ(server->stats().parseErrors, 1u);
}

TEST_F(ServeTest, OversizedFrameGetsAnErrorNotACrash)
{
    startServer();
    int fd = rawConnect(socketPath);
    // One frame just over the cap, no newline until the very end.
    std::string huge(kMaxServeFrameBytes + 1024, 'x');
    ASSERT_TRUE(writeAll(fd, huge + "\n"));
    LineReader reader(fd, kMaxServeFrameBytes);
    std::string reply;
    ASSERT_EQ(reader.readLine(reply), LineReader::Status::Line);
    EXPECT_NE(reply.find("\"error\""), std::string::npos);
    EXPECT_NE(reply.find("cap"), std::string::npos);
    ::close(fd);
    // The server is still healthy.
    ServeClient client;
    std::string err;
    ASSERT_TRUE(client.connect(socketPath, &err)) << err;
    EXPECT_TRUE(client.ping(&err)) << err;
}

TEST_F(ServeTest, ComputesCachesAndReplaysByteIdentically)
{
    startServer();
    std::vector<validate::SweepJobSpec> jobs = { tinySpec(1),
                                                 tinySpec(2) };
    ServeClient client;
    std::string err;
    ASSERT_TRUE(client.connect(socketPath, &err)) << err;

    std::vector<ServeClient::JobReply> cold;
    ASSERT_TRUE(client.submit(jobs, cold, &err)) << err;
    ASSERT_EQ(cold.size(), 2u);
    for (const auto &r : cold) {
        EXPECT_TRUE(r.ok) << r.error;
        EXPECT_EQ(r.source, "computed");
    }
    // The served result is the same bytes an in-process run yields.
    EXPECT_EQ(cold[0].resultJson,
              runSweepJob(jobs[0]).toJson(JsonWriter::kFullPrecision));
    EXPECT_EQ(server->jobsExecuted(), 2u);

    std::vector<ServeClient::JobReply> warm;
    ASSERT_TRUE(client.submit(jobs, warm, &err)) << err;
    for (size_t i = 0; i < warm.size(); ++i) {
        EXPECT_TRUE(warm[i].ok);
        EXPECT_EQ(warm[i].source, "cache");
        EXPECT_EQ(warm[i].resultJson, cold[i].resultJson);
    }
    // The warm batch executed nothing.
    EXPECT_EQ(server->jobsExecuted(), 2u);
    ServeStats s = server->stats();
    EXPECT_EQ(s.cacheHit, 2u);
    EXPECT_EQ(s.cacheMiss, 2u);
}

TEST_F(ServeTest, ConcurrentClientsGetByteIdenticalResults)
{
    startServer();
    std::vector<validate::SweepJobSpec> jobs = { tinySpec(1),
                                                 tinySpec(2),
                                                 tinySpec(3) };
    // Cold single-client pass establishes the reference bytes.
    std::vector<ServeClient::JobReply> reference;
    {
        ServeClient client;
        std::string err;
        ASSERT_TRUE(client.connect(socketPath, &err)) << err;
        ASSERT_TRUE(client.submit(jobs, reference, &err)) << err;
    }

    constexpr size_t kClients = 4;
    std::vector<std::vector<ServeClient::JobReply>> got(kClients);
    std::vector<std::string> errs(kClients);
    std::vector<std::thread> threads;
    for (size_t c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            ServeClient client;
            if (!client.connect(socketPath, &errs[c]))
                return;
            client.submit(jobs, got[c], &errs[c]);
        });
    }
    for (auto &t : threads)
        t.join();

    for (size_t c = 0; c < kClients; ++c) {
        ASSERT_EQ(got[c].size(), jobs.size()) << errs[c];
        for (size_t i = 0; i < jobs.size(); ++i) {
            ASSERT_TRUE(got[c][i].ok) << got[c][i].error;
            EXPECT_EQ(got[c][i].resultJson,
                      reference[i].resultJson)
                << "client " << c << " job " << i;
        }
    }
    // Every post-reference request was a pure cache hit.
    EXPECT_EQ(server->jobsExecuted(), jobs.size());
}

TEST_F(ServeTest, DuplicateInFlightJobsCoalesceOntoOneWorker)
{
    startServer();
    // Widen the in-flight window so the duplicates provably overlap
    // the first occurrence's execution.
    server->setJobDelaySeconds(0.2);
    std::vector<validate::SweepJobSpec> jobs = { tinySpec(9),
                                                 tinySpec(9),
                                                 tinySpec(9) };
    ServeClient client;
    std::string err;
    ASSERT_TRUE(client.connect(socketPath, &err)) << err;
    std::vector<ServeClient::JobReply> replies;
    ASSERT_TRUE(client.submit(jobs, replies, &err)) << err;

    ASSERT_EQ(replies.size(), 3u);
    EXPECT_EQ(replies[0].source, "computed");
    EXPECT_EQ(replies[1].source, "coalesced");
    EXPECT_EQ(replies[2].source, "coalesced");
    for (const auto &r : replies) {
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_EQ(r.resultJson, replies[0].resultJson);
    }
    // The proof: one simulation ran for three identical requests.
    EXPECT_EQ(server->jobsExecuted(), 1u);
    ServeStats s = server->stats();
    EXPECT_EQ(s.cacheMiss, 1u);
    EXPECT_EQ(s.cacheCoalesced, 2u);

    // Cross-client coalescing: two clients race the same fresh key.
    std::vector<validate::SweepJobSpec> fresh = { tinySpec(10) };
    std::vector<std::thread> threads;
    for (int c = 0; c < 2; ++c) {
        threads.emplace_back([&] {
            ServeClient racer;
            std::string rerr;
            ASSERT_TRUE(racer.connect(socketPath, &rerr)) << rerr;
            std::vector<ServeClient::JobReply> r;
            ASSERT_TRUE(racer.submit(fresh, r, &rerr)) << rerr;
            EXPECT_TRUE(r[0].ok);
        });
    }
    for (auto &t : threads)
        t.join();
    // The racers cost at most one execution between them (coalesced
    // when overlapping, a cache hit otherwise) on top of the one
    // from the first batch — never one each.
    EXPECT_LE(server->jobsExecuted(), 2u);
}

TEST_F(ServeTest, ClientDisconnectMidBatchDoesNotWedgeTheServer)
{
    startServer();
    server->setJobDelaySeconds(0.2);
    validate::SweepJobSpec spec = tinySpec(11);

    // Fire a batch and slam the connection before any reply.
    int fd = rawConnect(socketPath);
    std::string frame = csprintf(
        "{\"cmd\":\"run\",\"jobs\":[%s,%s]}",
        spec.toJson().c_str(), tinySpec(12).toJson().c_str());
    ASSERT_TRUE(writeAll(fd, frame + "\n"));
    ::close(fd);

    // The abandoned jobs still complete into the cache, and the
    // server keeps serving: a well-behaved client asking for the
    // same work gets cache (or coalesced) answers promptly.
    server->setJobDelaySeconds(0);
    ServeClient client;
    std::string err;
    ASSERT_TRUE(client.connect(socketPath, &err)) << err;
    std::vector<ServeClient::JobReply> replies;
    ASSERT_TRUE(client.submit({ spec, tinySpec(12) }, replies,
                              &err))
        << err;
    for (const auto &r : replies) {
        EXPECT_TRUE(r.ok) << r.error;
        EXPECT_NE(r.source, "");
    }
    // The two specs simulated exactly once each despite the two
    // submissions.
    EXPECT_EQ(server->jobsExecuted(), 2u);
    // And the disconnected client fully deregisters (its thread may
    // still be observing the EOF; give it a moment).
    for (int i = 0; i < 200 && server->stats().clientsActive != 1;
         ++i) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(10));
    }
    EXPECT_EQ(server->stats().clientsActive, 1u);
}

TEST_F(ServeTest, QuarantinedJobsReportErrorsNotCrashes)
{
    // Faulting specs with isolation: the worker crashes, the server
    // answers with a clean error, and nothing is cached.
    ServeOptions opt;
    opt.allowFaults = true;
    opt.supervisor.isolate = true;
    opt.supervisor.retries = 0;
    opt.supervisor.backoffSeconds = 0;
    opt.supervisor.timeoutSeconds = 120;
    startServer(opt);

    ServeClient client;
    std::string err;
    ASSERT_TRUE(client.connect(socketPath, &err)) << err;
    std::vector<ServeClient::JobReply> replies;
    ASSERT_TRUE(client.submit({ tinySpec(13, "crash"),
                                tinySpec(14) },
                              replies, &err))
        << err;
    ASSERT_EQ(replies.size(), 2u);
    EXPECT_FALSE(replies[0].ok);
    EXPECT_NE(replies[0].error.find("quarantined"),
              std::string::npos)
        << replies[0].error;
    EXPECT_TRUE(replies[1].ok) << replies[1].error;

    // Failures are not cached: the same request computes again.
    std::vector<ServeClient::JobReply> again;
    ASSERT_TRUE(client.submit({ tinySpec(13, "crash") }, again,
                              &err))
        << err;
    EXPECT_FALSE(again[0].ok);
    EXPECT_EQ(again[0].source, "computed");
}

TEST_F(ServeTest, SubmitResilientRidesOutAServerRestartMidBatch)
{
    // Kill and restart the daemon under a live client: the stream
    // dies mid-batch, submitResilient reconnects with backoff and
    // resubmits the whole batch. Jobs that finished before the kill
    // answer from the disk cache tier, which survives the restart —
    // so the retry costs nothing it already paid for.
    std::string dir = csprintf("/tmp/shelfsim_test_restart_%d",
                               static_cast<int>(getpid()));
    (void)system(("rm -rf " + dir).c_str());
    ServeOptions opt;
    opt.cacheDir = dir;
    startServer(opt);
    server->setJobDelaySeconds(0.15);

    std::vector<validate::SweepJobSpec> jobs = {
        tinySpec(21), tinySpec(22), tinySpec(23), tinySpec(24)
    };
    std::vector<ServeClient::JobReply> replies;
    std::string clientErr;
    bool ok = false;
    std::thread clientThread([&] {
        ServeClient client;
        ok = client.submitResilient(socketPath, jobs, replies, 10,
                                    0.05, &clientErr);
    });

    // Let the batch get in flight, then tear the server down under
    // the client...
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    server->stop();
    // ...and bring a fresh daemon up on the same socket and cache
    // directory.
    ServeOptions ropt;
    ropt.socketPath = socketPath;
    ropt.cacheDir = dir;
    ropt.executors = 2;
    SweepServer revived(ropt);
    std::string err;
    ASSERT_TRUE(revived.start(&err)) << err;

    clientThread.join();
    EXPECT_TRUE(ok) << clientErr;
    ASSERT_EQ(replies.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(replies[i].ok) << replies[i].error;
        // Whatever the interleaving, the bytes match a local run.
        EXPECT_EQ(replies[i].resultJson,
                  runSweepJob(jobs[i])
                      .toJson(JsonWriter::kFullPrecision));
    }
    revived.stop();
    (void)system(("rm -rf " + dir).c_str());
}

TEST(ServeClientRetry, ConnectRetryWaitsOutALateBindingServer)
{
    // The daemon's socket does not exist yet when the client starts
    // dialing: plain connect() fails instantly, connectRetry keeps
    // trying with backoff until the server binds.
    std::string path = csprintf("/tmp/shelfsim_test_latebind_%d",
                                static_cast<int>(getpid()));
    ::unlink(path.c_str());

    std::thread starter([&] {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(250));
        ServeOptions opt;
        opt.socketPath = path;
        opt.executors = 1;
        SweepServer server(opt);
        std::string err;
        ASSERT_TRUE(server.start(&err)) << err;
        server.waitForShutdownRequest();
        server.stop();
    });

    ServeClient client;
    std::string err;
    // A single attempt fails fast while the socket is absent...
    EXPECT_FALSE(client.connectRetry(path, 1, 0.01, &err));
    // ...but a bounded retry loop outlasts the startup gap.
    EXPECT_TRUE(client.connectRetry(path, 10, 0.05, &err)) << err;
    EXPECT_TRUE(client.ping(&err)) << err;
    EXPECT_TRUE(client.requestShutdown(&err)) << err;
    starter.join();
}

TEST_F(ServeTest, ShutdownCommandStopsTheServer)
{
    startServer();
    ServeClient client;
    std::string err;
    ASSERT_TRUE(client.connect(socketPath, &err)) << err;
    ASSERT_TRUE(client.requestShutdown(&err)) << err;
    // The blocking wait the CLI's --serve loop uses returns...
    server->waitForShutdownRequest();
    server->stop();
    // ...and the socket is gone: new connections fail.
    ServeClient late;
    EXPECT_FALSE(late.connect(socketPath, &err));
}

int
main(int argc, char **argv)
{
    // This binary is its own sandboxed sweep worker: isolation
    // tests re-exec it as `test_serve --worker '<spec>'`.
    if (int rc = 0; shelf::maybeRunSweepWorker(argc, argv, &rc))
        return rc;
    testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
