/**
 * @file
 * Structural schedule properties verified from the pipeline trace:
 * per-cycle issue never exceeds the machine width or the per-class
 * functional-unit limits, dispatch respects the dispatch width,
 * fetch respects the fetch width, and shelf instructions of each
 * thread issue in program order.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/core.hh"
#include "mem/hierarchy.hh"
#include "workload/generator.hh"
#include "workload/spec2006.hh"

using namespace shelf;

namespace
{

struct Event
{
    Cycle cycle;
    int tid;
    SeqNum seq;
    std::string stage;
    std::string disasm;
};

struct Collected
{
    std::vector<Event> events;
    CoreParams params;
};

Collected
collect(CoreParams p, Cycle cycles, uint64_t seed)
{
    const char *names[4] = { "gcc", "milc", "hmmer", "sjeng" };
    std::vector<Trace> traces;
    MemHierarchy mem;
    for (unsigned t = 0; t < p.threads; ++t) {
        TraceGenerator gen(spec2006Profile(names[t % 4]), seed + t,
                           static_cast<Addr>(t) << 30);
        traces.push_back(gen.generate(20000));
        for (const auto &inst : traces.back()) {
            mem.warmInst(inst.pc);
            if (inst.isMem())
                mem.warmData(inst.addr);
        }
    }
    std::vector<const Trace *> ptrs;
    for (const auto &tr : traces)
        ptrs.push_back(&tr);
    Core core(p, mem, ptrs);

    Collected c;
    c.params = p;
    core.setTraceSink([&c](const std::string &line) {
        Event ev;
        char stage[32] = {};
        unsigned long long cycle = 0, seq = 0;
        int tid = 0;
        int consumed = 0;
        sscanf(line.c_str(), " %llu: t%d #%llu %31s %n", &cycle,
               &tid, &seq, stage, &consumed);
        ev.cycle = cycle;
        ev.tid = tid;
        ev.seq = seq;
        ev.stage = stage;
        ev.disasm = line.substr(consumed);
        c.events.push_back(ev);
    });
    core.run(cycles);
    return c;
}

} // namespace

TEST(ScheduleProperties, IssueWidthNeverExceeded)
{
    Collected c = collect(shelfCore(4, true), 3000, 3);
    std::map<Cycle, unsigned> issues;
    for (const auto &ev : c.events)
        if (ev.stage.rfind("issue", 0) == 0)
            ++issues[ev.cycle];
    ASSERT_FALSE(issues.empty());
    for (const auto &[cycle, n] : issues)
        ASSERT_LE(n, c.params.issueWidth) << "cycle " << cycle;
}

TEST(ScheduleProperties, MemoryPortsNeverExceeded)
{
    Collected c = collect(shelfCore(4, true), 3000, 5);
    std::map<Cycle, unsigned> mem_issues;
    for (const auto &ev : c.events) {
        if (ev.stage.rfind("issue", 0) == 0 &&
            (ev.disasm.rfind("MemRead", 0) == 0 ||
             ev.disasm.rfind("MemWrite", 0) == 0)) {
            ++mem_issues[ev.cycle];
        }
    }
    ASSERT_FALSE(mem_issues.empty());
    for (const auto &[cycle, n] : mem_issues)
        ASSERT_LE(n, c.params.memPorts) << "cycle " << cycle;
}

TEST(ScheduleProperties, DispatchWidthNeverExceeded)
{
    Collected c = collect(baseCore64(4), 3000, 7);
    std::map<Cycle, unsigned> dispatches;
    for (const auto &ev : c.events)
        if (ev.stage.rfind("dispatch", 0) == 0)
            ++dispatches[ev.cycle];
    for (const auto &[cycle, n] : dispatches)
        ASSERT_LE(n, c.params.dispatchWidth) << "cycle " << cycle;
}

TEST(ScheduleProperties, FetchWidthNeverExceeded)
{
    Collected c = collect(baseCore64(2), 3000, 9);
    std::map<Cycle, unsigned> fetches;
    for (const auto &ev : c.events)
        if (ev.stage == "fetch")
            ++fetches[ev.cycle];
    for (const auto &[cycle, n] : fetches)
        ASSERT_LE(n, c.params.fetchWidth) << "cycle " << cycle;
}

TEST(ScheduleProperties, ShelfIssuesInProgramOrderPerThread)
{
    Collected c = collect(shelfCore(4, true), 4000, 11);
    std::map<int, SeqNum> last_shelf_issue;
    size_t shelf_issues = 0;
    for (const auto &ev : c.events) {
        if (ev.stage != "issue(shelf)")
            continue;
        ++shelf_issues;
        auto it = last_shelf_issue.find(ev.tid);
        if (it != last_shelf_issue.end()) {
            ASSERT_GT(ev.seq, it->second)
                << "shelf issued out of program order on t"
                << ev.tid;
        }
        last_shelf_issue[ev.tid] = ev.seq;
    }
    EXPECT_GT(shelf_issues, 100u);
}

TEST(ScheduleProperties, IqRetirementInProgramOrderPerThread)
{
    Collected c = collect(shelfCore(4, true), 4000, 13);
    std::map<int, SeqNum> last_retire;
    for (const auto &ev : c.events) {
        if (ev.stage != "retire") // IQ/ROB retirement only
            continue;
        auto it = last_retire.find(ev.tid);
        if (it != last_retire.end()) {
            ASSERT_GT(ev.seq, it->second)
                << "ROB retired out of order on t" << ev.tid;
        }
        last_retire[ev.tid] = ev.seq;
    }
}
