/**
 * @file
 * Unit tests for the per-thread ROB and its issue-tracking bitvector
 * (paper Figure 4): head-pointer advance over issued instructions,
 * the conservative snapshot, retirement, and squash rollback.
 */

#include <gtest/gtest.h>

#include "core/rob.hh"

using namespace shelf;

namespace
{

DynInstPtr
makeInst(ThreadID tid, SeqNum seq)
{
    auto inst = makeDynInst();
    inst->tid = tid;
    inst->seq = seq;
    inst->gseq = seq;
    return inst;
}

} // namespace

TEST(ROB, DispatchAssignsMonotonicIndices)
{
    ROB rob(1, 4);
    EXPECT_EQ(rob.dispatch(0, makeInst(0, 1)), 0u);
    EXPECT_EQ(rob.dispatch(0, makeInst(0, 2)), 1u);
    EXPECT_EQ(rob.size(0), 2u);
    EXPECT_EQ(rob.tailIndex(0), 2u);
}

TEST(ROB, IssueHeadTracksOldestUnissued)
{
    ROB rob(1, 8);
    std::vector<DynInstPtr> insts;
    for (SeqNum s = 0; s < 4; ++s) {
        insts.push_back(makeInst(0, s));
        rob.dispatch(0, insts.back());
    }
    EXPECT_EQ(rob.issueHead(0), 0u);

    // Issue out of order: 1 then 0.
    insts[1]->issued = true;
    rob.markIssued(0, 1);
    EXPECT_EQ(rob.issueHead(0), 0u); // oldest still unissued

    insts[0]->issued = true;
    rob.markIssued(0, 0);
    EXPECT_EQ(rob.issueHead(0), 2u); // skips over already-issued 1
}

TEST(ROB, SnapshotLagsByOneCycle)
{
    ROB rob(1, 8);
    auto a = makeInst(0, 1);
    rob.dispatch(0, a);
    rob.beginCycle();
    EXPECT_EQ(rob.issueHeadSnapshot(0), 0u);
    a->issued = true;
    rob.markIssued(0, 0);
    // Live head advanced; snapshot (conservative view) did not.
    EXPECT_EQ(rob.issueHead(0), 1u);
    EXPECT_EQ(rob.issueHeadSnapshot(0), 0u);
    rob.beginCycle();
    EXPECT_EQ(rob.issueHeadSnapshot(0), 1u);
}

TEST(ROB, RetireRequiresCompletion)
{
    ROB rob(1, 4);
    auto a = makeInst(0, 1);
    rob.dispatch(0, a);
    EXPECT_DEATH(rob.retireHead(0), "incomplete");
    a->completed = true;
    rob.retireHead(0);
    EXPECT_TRUE(rob.empty(0));
}

TEST(ROB, SquashTailRollsBackAndClampsHeads)
{
    ROB rob(1, 8);
    std::vector<DynInstPtr> insts;
    for (SeqNum s = 0; s < 3; ++s) {
        insts.push_back(makeInst(0, s));
        rob.dispatch(0, insts.back());
    }
    for (auto &inst : insts)
        inst->issued = true;
    rob.markIssued(0, 2);
    EXPECT_EQ(rob.issueHead(0), 3u);

    EXPECT_EQ(rob.squashTail(0), insts[2]);
    EXPECT_EQ(rob.issueHead(0), 2u); // clamped to the new tail
    EXPECT_EQ(rob.squashTail(0), insts[1]);
    EXPECT_EQ(rob.size(0), 1u);
}

TEST(ROB, ThreadsArePartitioned)
{
    ROB rob(2, 2);
    rob.dispatch(0, makeInst(0, 1));
    rob.dispatch(0, makeInst(0, 2));
    EXPECT_TRUE(rob.full(0));
    EXPECT_FALSE(rob.full(1));
    EXPECT_EQ(rob.issueHead(1), 0u);
}

TEST(ROB, IssueHeadAdvancesPastRetired)
{
    ROB rob(1, 4);
    auto a = makeInst(0, 1);
    auto b = makeInst(0, 2);
    rob.dispatch(0, a);
    rob.dispatch(0, b);
    a->issued = true;
    a->completed = true;
    rob.markIssued(0, 0);
    rob.retireHead(0);
    b->issued = true;
    rob.markIssued(0, 1);
    EXPECT_EQ(rob.issueHead(0), 2u);
}
