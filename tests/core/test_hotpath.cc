/**
 * @file
 * Pinning suite for the hot-path overhaul (slab-allocated DynInst +
 * incremental IQ ready list): the allocator's recycling and lifetime
 * enforcement, DynInstPtr refcount semantics, pinned commit-stream
 * fingerprints proving the overhaul is cycle-exact against the
 * pre-overhaul simulator, and the NaN-rejecting aggregation fixes in
 * src/metrics. The golden-model agreement across all 11 validate
 * configurations rides in test_validate.cc; the cross-config
 * commit-stream property suite in test_differential.cc.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/core.hh"
#include "core/dyn_inst.hh"
#include "mem/hierarchy.hh"
#include "metrics/throughput.hh"
#include "workload/generator.hh"
#include "workload/spec2006.hh"

using namespace shelf;

// ---------------------------------------------------------------------
// DynInstPool: slab recycling and lifetime enforcement.
// ---------------------------------------------------------------------

TEST(DynInstPool, AllocInitialisesFreshInstruction)
{
    DynInstPool pool(4);
    auto a = pool.alloc();
    // Dirty the record, free it, and check the recycled storage comes
    // back default-initialised (the pool placement-news over it).
    a->seq = 123;
    a->issued = true;
    a.reset();
    auto b = pool.alloc();
    EXPECT_EQ(b->seq, kNoSeq);
    EXPECT_FALSE(b->issued);
    EXPECT_EQ(b->pool, &pool);
    EXPECT_EQ(b->refCount, 1u);
}

TEST(DynInstPool, RecyclesFreedStorage)
{
    DynInstPool pool(4);
    auto a = pool.alloc();
    DynInst *raw = a.get();
    a.reset();
    EXPECT_EQ(pool.live(), 0u);
    // LIFO free list: the next alloc reuses the just-freed record.
    auto b = pool.alloc();
    EXPECT_EQ(b.get(), raw);
    EXPECT_EQ(pool.slabCount(), 1u);
}

TEST(DynInstPool, GrowsSlabsOnDemand)
{
    DynInstPool pool(2);
    std::vector<DynInstPtr> held;
    for (int i = 0; i < 5; ++i)
        held.push_back(pool.alloc());
    EXPECT_EQ(pool.live(), 5u);
    EXPECT_EQ(pool.slabCount(), 3u); // ceil(5 / 2)
    held.clear();
    EXPECT_EQ(pool.live(), 0u);
    // Freed records satisfy new allocations without a new slab.
    for (int i = 0; i < 5; ++i)
        held.push_back(pool.alloc());
    EXPECT_EQ(pool.slabCount(), 3u);
}

TEST(DynInstPool, DiesWhenDestroyedWithLiveInstructions)
{
    EXPECT_DEATH(
        {
            DynInstPtr leak;
            DynInstPool pool;
            leak = pool.alloc();
            // pool dies here while `leak` still holds a handle
        },
        "live instructions");
}

// ---------------------------------------------------------------------
// DynInstPtr: intrusive refcount semantics (the shared_ptr contract
// it replaces, observed through pool.live()).
// ---------------------------------------------------------------------

TEST(DynInstPtr, CopyAndDestroyTrackRefcount)
{
    DynInstPool pool(4);
    auto a = pool.alloc();
    EXPECT_EQ(a->refCount, 1u);
    {
        DynInstPtr b = a;
        EXPECT_EQ(a->refCount, 2u);
        DynInstPtr c;
        c = b;
        EXPECT_EQ(a->refCount, 3u);
    }
    EXPECT_EQ(a->refCount, 1u);
    EXPECT_EQ(pool.live(), 1u);
    a.reset();
    EXPECT_EQ(pool.live(), 0u);
}

TEST(DynInstPtr, MoveTransfersWithoutRefcountTraffic)
{
    DynInstPool pool(4);
    auto a = pool.alloc();
    DynInst *raw = a.get();
    DynInstPtr b = std::move(a);
    EXPECT_EQ(b.get(), raw);
    EXPECT_EQ(a.get(), nullptr);
    EXPECT_EQ(b->refCount, 1u);
    DynInstPtr c;
    c = std::move(b);
    EXPECT_EQ(c.get(), raw);
    EXPECT_EQ(b.get(), nullptr);
    EXPECT_EQ(c->refCount, 1u);
    EXPECT_EQ(pool.live(), 1u);
}

TEST(DynInstPtr, SelfAssignmentIsSafe)
{
    DynInstPool pool(4);
    auto a = pool.alloc();
    DynInstPtr &alias = a;
    a = alias;
    EXPECT_EQ(a->refCount, 1u);
    EXPECT_EQ(pool.live(), 1u);
}

TEST(DynInstPtr, AssignReleasesPrevious)
{
    DynInstPool pool(4);
    auto a = pool.alloc();
    auto b = pool.alloc();
    EXPECT_EQ(pool.live(), 2u);
    a = b; // a's original record must be freed
    EXPECT_EQ(pool.live(), 1u);
    a = nullptr;
    b.reset();
    EXPECT_EQ(pool.live(), 0u);
}

TEST(DynInstPtr, HeapFallbackForPoollessInstructions)
{
    // makeDynInst() records no pool; release must route to delete
    // (exercised under ASAN in the hotpath_asan ctest entry).
    auto a = makeDynInst();
    EXPECT_EQ(a->pool, nullptr);
    DynInstPtr b = a;
    a.reset();
    EXPECT_NE(b.get(), nullptr);
}

// ---------------------------------------------------------------------
// Cycle-exactness pinning: the overhaul must not change behaviour.
//
// The fingerprints below were captured from this tree after the
// overhaul was verified byte-identical to the pre-overhaul seed on
// the CLI outputs (`shelfsim_cli --sweep`, `--json` records) and on
// every retired-instruction count of bench_hotpath, so they pin the
// *seed* scheduling behaviour. Everything feeding them is
// deterministic and machine-independent (seeded trace generation,
// cycle-driven model); any divergence means issue order changed.
// ---------------------------------------------------------------------

namespace
{

struct Fingerprint
{
    uint64_t retired = 0; ///< instructions retired across threads
    uint64_t hash = 0;    ///< FNV-1a over per-thread commit streams
};

uint64_t
fnvMix(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ull;
    }
    return h;
}

Fingerprint
runFingerprint(const CoreParams &p, Cycle cycles)
{
    const char *names[4] = { "gcc", "mcf", "hmmer", "gobmk" };
    std::vector<Trace> traces;
    MemHierarchy mem;
    for (unsigned t = 0; t < p.threads; ++t) {
        TraceGenerator gen(spec2006Profile(names[t % 4]), 1 + t,
                           static_cast<Addr>(t) << 30);
        traces.push_back(gen.generate(40000));
        for (const auto &inst : traces.back()) {
            mem.warmInst(inst.pc);
            if (inst.isMem())
                mem.warmData(inst.addr);
        }
    }
    std::vector<const Trace *> ptrs;
    for (const auto &tr : traces)
        ptrs.push_back(&tr);
    Core core(p, mem, ptrs);
    core.setCheckInvariants(true);
    core.setRetireLog(100000);
    core.run(cycles);

    Fingerprint fp;
    fp.hash = 14695981039346656037ull;
    for (ThreadID t = 0; t < static_cast<ThreadID>(p.threads); ++t) {
        fp.retired += core.retired(t);
        for (uint64_t idx : core.retiredTraceIndices(t))
            fp.hash = fnvMix(fp.hash, idx);
        fp.hash = fnvMix(fp.hash, ~0ull); // thread separator
    }
    return fp;
}

} // namespace

TEST(HotpathPinning, Base64SingleThreadCommitStream)
{
    Fingerprint fp = runFingerprint(baseCore64(1), 8000);
    EXPECT_EQ(fp.retired, 4020ull);
    EXPECT_EQ(fp.hash, 6583005211508597185ull);
}

TEST(HotpathPinning, Base128FourThreadCommitStream)
{
    Fingerprint fp = runFingerprint(baseCore128(4), 8000);
    EXPECT_EQ(fp.retired, 8036ull);
    EXPECT_EQ(fp.hash, 13168560950528426841ull);
}

TEST(HotpathPinning, ShelfOptFourThreadCommitStream)
{
    Fingerprint fp = runFingerprint(shelfCore(4, true), 8000);
    EXPECT_EQ(fp.retired, 7533ull);
    EXPECT_EQ(fp.hash, 7493942761103682209ull);
}

TEST(HotpathPinning, ShelfConsTwoThreadCommitStream)
{
    Fingerprint fp = runFingerprint(shelfCore(2, false), 8000);
    EXPECT_EQ(fp.retired, 2315ull);
    EXPECT_EQ(fp.hash, 4525508270323031247ull);
}

// ---------------------------------------------------------------------
// NaN-rejecting aggregation (the quarantined-cell fix): geomean() and
// mean() must die on NaN instead of silently poisoning the aggregate,
// and the *Finite variants must skip-and-count instead.
// ---------------------------------------------------------------------

TEST(NanAggregation, GeomeanDiesOnNaN)
{
    // NaN fails the old `v <= 0.0` check, so this used to return NaN.
    EXPECT_DEATH(geomean({ 1.0, std::nan(""), 2.0 }), "NaN");
}

TEST(NanAggregation, MeanDiesOnNaN)
{
    EXPECT_DEATH(mean({ 1.0, std::nan("") }), "NaN");
}

TEST(NanAggregation, GeomeanStillRejectsNonPositive)
{
    EXPECT_DEATH(geomean({ 1.0, 0.0 }), "non-positive");
    EXPECT_DEATH(geomean({}), "empty");
}

TEST(NanAggregation, GeomeanFiniteSkipsAndCounts)
{
    FiniteStat st = geomeanFinite({ 2.0, std::nan(""), 8.0 });
    EXPECT_DOUBLE_EQ(st.value, 4.0);
    EXPECT_EQ(st.used, 2u);
    EXPECT_EQ(st.excluded, 1u);

    // No quarantined cells: same value as the strict geomean.
    st = geomeanFinite({ 2.0, 8.0 });
    EXPECT_DOUBLE_EQ(st.value, geomean({ 2.0, 8.0 }));
    EXPECT_EQ(st.excluded, 0u);
}

TEST(NanAggregation, GeomeanFiniteStillRejectsNonPositive)
{
    // Skip-and-count is for quarantined (NaN) cells only; a
    // non-positive *finite* value is still a caller bug.
    EXPECT_DEATH(geomeanFinite({ 1.0, -3.0 }), "non-positive");
}

TEST(NanAggregation, MeanFiniteSkipsAndCounts)
{
    FiniteStat st = meanFinite({ 1.0, std::nan(""), 3.0 });
    EXPECT_DOUBLE_EQ(st.value, 2.0);
    EXPECT_EQ(st.used, 2u);
    EXPECT_EQ(st.excluded, 1u);
}

TEST(NanAggregation, AllQuarantinedYieldsNaN)
{
    FiniteStat st = geomeanFinite({ std::nan(""), std::nan("") });
    EXPECT_TRUE(std::isnan(st.value));
    EXPECT_EQ(st.used, 0u);
    EXPECT_EQ(st.excluded, 2u);
    st = meanFinite({});
    EXPECT_TRUE(std::isnan(st.value));
}
