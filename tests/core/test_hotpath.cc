/**
 * @file
 * Pinning suite for the hot-path overhauls (slab-allocated DynInst +
 * incremental IQ ready list + event-driven shelf readiness +
 * quiescent-cycle skipping): the allocator's recycling and lifetime
 * enforcement, DynInstPtr refcount semantics, pinned commit-stream
 * fingerprints proving the overhauls are cycle-exact against the
 * pre-overhaul simulator, shelf-head waiter-chain registration /
 * wakeup / squash-invalidation units, differential tests asserting
 * skipped and unskipped runs are cycle-for-cycle identical, and the
 * NaN-rejecting aggregation fixes in src/metrics. The golden-model
 * agreement across all 11 validate configurations rides in
 * test_validate.cc; the cross-config commit-stream property suite in
 * test_differential.cc.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/core.hh"
#include "core/dyn_inst.hh"
#include "mem/hierarchy.hh"
#include "metrics/throughput.hh"
#include "workload/generator.hh"
#include "workload/spec2006.hh"

using namespace shelf;

// ---------------------------------------------------------------------
// DynInstPool: slab recycling and lifetime enforcement.
// ---------------------------------------------------------------------

TEST(DynInstPool, AllocInitialisesFreshInstruction)
{
    DynInstPool pool(4);
    auto a = pool.alloc();
    // Dirty the record, free it, and check the recycled storage comes
    // back default-initialised (the pool placement-news over it).
    a->seq = 123;
    a->issued = true;
    a.reset();
    auto b = pool.alloc();
    EXPECT_EQ(b->seq, kNoSeq);
    EXPECT_FALSE(b->issued);
    EXPECT_EQ(b->pool, &pool);
    EXPECT_EQ(b->refCount, 1u);
}

TEST(DynInstPool, RecyclesFreedStorage)
{
    DynInstPool pool(4);
    auto a = pool.alloc();
    DynInst *raw = a.get();
    a.reset();
    EXPECT_EQ(pool.live(), 0u);
    // LIFO free list: the next alloc reuses the just-freed record.
    auto b = pool.alloc();
    EXPECT_EQ(b.get(), raw);
    EXPECT_EQ(pool.slabCount(), 1u);
}

TEST(DynInstPool, GrowsSlabsOnDemand)
{
    DynInstPool pool(2);
    std::vector<DynInstPtr> held;
    for (int i = 0; i < 5; ++i)
        held.push_back(pool.alloc());
    EXPECT_EQ(pool.live(), 5u);
    EXPECT_EQ(pool.slabCount(), 3u); // ceil(5 / 2)
    held.clear();
    EXPECT_EQ(pool.live(), 0u);
    // Freed records satisfy new allocations without a new slab.
    for (int i = 0; i < 5; ++i)
        held.push_back(pool.alloc());
    EXPECT_EQ(pool.slabCount(), 3u);
}

TEST(DynInstPool, DiesWhenDestroyedWithLiveInstructions)
{
    EXPECT_DEATH(
        {
            DynInstPtr leak;
            DynInstPool pool;
            leak = pool.alloc();
            // pool dies here while `leak` still holds a handle
        },
        "live instructions");
}

// ---------------------------------------------------------------------
// DynInstPtr: intrusive refcount semantics (the shared_ptr contract
// it replaces, observed through pool.live()).
// ---------------------------------------------------------------------

TEST(DynInstPtr, CopyAndDestroyTrackRefcount)
{
    DynInstPool pool(4);
    auto a = pool.alloc();
    EXPECT_EQ(a->refCount, 1u);
    {
        DynInstPtr b = a;
        EXPECT_EQ(a->refCount, 2u);
        DynInstPtr c;
        c = b;
        EXPECT_EQ(a->refCount, 3u);
    }
    EXPECT_EQ(a->refCount, 1u);
    EXPECT_EQ(pool.live(), 1u);
    a.reset();
    EXPECT_EQ(pool.live(), 0u);
}

TEST(DynInstPtr, MoveTransfersWithoutRefcountTraffic)
{
    DynInstPool pool(4);
    auto a = pool.alloc();
    DynInst *raw = a.get();
    DynInstPtr b = std::move(a);
    EXPECT_EQ(b.get(), raw);
    EXPECT_EQ(a.get(), nullptr);
    EXPECT_EQ(b->refCount, 1u);
    DynInstPtr c;
    c = std::move(b);
    EXPECT_EQ(c.get(), raw);
    EXPECT_EQ(b.get(), nullptr);
    EXPECT_EQ(c->refCount, 1u);
    EXPECT_EQ(pool.live(), 1u);
}

TEST(DynInstPtr, SelfAssignmentIsSafe)
{
    DynInstPool pool(4);
    auto a = pool.alloc();
    DynInstPtr &alias = a;
    a = alias;
    EXPECT_EQ(a->refCount, 1u);
    EXPECT_EQ(pool.live(), 1u);
}

TEST(DynInstPtr, AssignReleasesPrevious)
{
    DynInstPool pool(4);
    auto a = pool.alloc();
    auto b = pool.alloc();
    EXPECT_EQ(pool.live(), 2u);
    a = b; // a's original record must be freed
    EXPECT_EQ(pool.live(), 1u);
    a = nullptr;
    b.reset();
    EXPECT_EQ(pool.live(), 0u);
}

TEST(DynInstPtr, HeapFallbackForPoollessInstructions)
{
    // makeDynInst() records no pool; release must route to delete
    // (exercised under ASAN in the hotpath_asan ctest entry).
    auto a = makeDynInst();
    EXPECT_EQ(a->pool, nullptr);
    DynInstPtr b = a;
    a.reset();
    EXPECT_NE(b.get(), nullptr);
}

// ---------------------------------------------------------------------
// Cycle-exactness pinning: the overhaul must not change behaviour.
//
// The fingerprints below were captured from this tree after the
// overhaul was verified byte-identical to the pre-overhaul seed on
// the CLI outputs (`shelfsim_cli --sweep`, `--json` records) and on
// every retired-instruction count of bench_hotpath, so they pin the
// *seed* scheduling behaviour. Everything feeding them is
// deterministic and machine-independent (seeded trace generation,
// cycle-driven model); any divergence means issue order changed.
// ---------------------------------------------------------------------

namespace
{

struct Fingerprint
{
    uint64_t retired = 0; ///< instructions retired across threads
    uint64_t hash = 0;    ///< FNV-1a over per-thread commit streams
};

uint64_t
fnvMix(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ull;
    }
    return h;
}

Fingerprint
runFingerprint(const CoreParams &p, Cycle cycles)
{
    const char *names[4] = { "gcc", "mcf", "hmmer", "gobmk" };
    std::vector<Trace> traces;
    MemHierarchy mem;
    for (unsigned t = 0; t < p.threads; ++t) {
        TraceGenerator gen(spec2006Profile(names[t % 4]), 1 + t,
                           static_cast<Addr>(t) << 30);
        traces.push_back(gen.generate(40000));
        for (const auto &inst : traces.back()) {
            mem.warmInst(inst.pc);
            if (inst.isMem())
                mem.warmData(inst.addr);
        }
    }
    std::vector<const Trace *> ptrs;
    for (const auto &tr : traces)
        ptrs.push_back(&tr);
    Core core(p, mem, ptrs);
    core.setCheckInvariants(true);
    core.setRetireLog(100000);
    core.run(cycles);

    Fingerprint fp;
    fp.hash = 14695981039346656037ull;
    for (ThreadID t = 0; t < static_cast<ThreadID>(p.threads); ++t) {
        fp.retired += core.retired(t);
        for (uint64_t idx : core.retiredTraceIndices(t))
            fp.hash = fnvMix(fp.hash, idx);
        fp.hash = fnvMix(fp.hash, ~0ull); // thread separator
    }
    return fp;
}

} // namespace

TEST(HotpathPinning, Base64SingleThreadCommitStream)
{
    Fingerprint fp = runFingerprint(baseCore64(1), 8000);
    EXPECT_EQ(fp.retired, 4020ull);
    EXPECT_EQ(fp.hash, 6583005211508597185ull);
}

TEST(HotpathPinning, Base128FourThreadCommitStream)
{
    Fingerprint fp = runFingerprint(baseCore128(4), 8000);
    EXPECT_EQ(fp.retired, 8036ull);
    EXPECT_EQ(fp.hash, 13168560950528426841ull);
}

TEST(HotpathPinning, ShelfOptFourThreadCommitStream)
{
    Fingerprint fp = runFingerprint(shelfCore(4, true), 8000);
    EXPECT_EQ(fp.retired, 7533ull);
    EXPECT_EQ(fp.hash, 7493942761103682209ull);
}

TEST(HotpathPinning, ShelfConsTwoThreadCommitStream)
{
    Fingerprint fp = runFingerprint(shelfCore(2, false), 8000);
    EXPECT_EQ(fp.retired, 2315ull);
    EXPECT_EQ(fp.hash, 4525508270323031247ull);
}

// ---------------------------------------------------------------------
// NaN-rejecting aggregation (the quarantined-cell fix): geomean() and
// mean() must die on NaN instead of silently poisoning the aggregate,
// and the *Finite variants must skip-and-count instead.
// ---------------------------------------------------------------------

TEST(NanAggregation, GeomeanDiesOnNaN)
{
    // NaN fails the old `v <= 0.0` check, so this used to return NaN.
    EXPECT_DEATH(geomean({ 1.0, std::nan(""), 2.0 }), "NaN");
}

TEST(NanAggregation, MeanDiesOnNaN)
{
    EXPECT_DEATH(mean({ 1.0, std::nan("") }), "NaN");
}

TEST(NanAggregation, GeomeanStillRejectsNonPositive)
{
    EXPECT_DEATH(geomean({ 1.0, 0.0 }), "non-positive");
    EXPECT_DEATH(geomean({}), "empty");
}

TEST(NanAggregation, GeomeanFiniteSkipsAndCounts)
{
    FiniteStat st = geomeanFinite({ 2.0, std::nan(""), 8.0 });
    EXPECT_DOUBLE_EQ(st.value, 4.0);
    EXPECT_EQ(st.used, 2u);
    EXPECT_EQ(st.excluded, 1u);

    // No quarantined cells: same value as the strict geomean.
    st = geomeanFinite({ 2.0, 8.0 });
    EXPECT_DOUBLE_EQ(st.value, geomean({ 2.0, 8.0 }));
    EXPECT_EQ(st.excluded, 0u);
}

TEST(NanAggregation, GeomeanFiniteStillRejectsNonPositive)
{
    // Skip-and-count is for quarantined (NaN) cells only; a
    // non-positive *finite* value is still a caller bug.
    EXPECT_DEATH(geomeanFinite({ 1.0, -3.0 }), "non-positive");
}

TEST(NanAggregation, MeanFiniteSkipsAndCounts)
{
    FiniteStat st = meanFinite({ 1.0, std::nan(""), 3.0 });
    EXPECT_DOUBLE_EQ(st.value, 2.0);
    EXPECT_EQ(st.used, 2u);
    EXPECT_EQ(st.excluded, 1u);
}

TEST(NanAggregation, AllQuarantinedYieldsNaN)
{
    FiniteStat st = geomeanFinite({ std::nan(""), std::nan("") });
    EXPECT_TRUE(std::isnan(st.value));
    EXPECT_EQ(st.used, 0u);
    EXPECT_EQ(st.excluded, 2u);
    st = meanFinite({});
    EXPECT_TRUE(std::isnan(st.value));
}

// ---------------------------------------------------------------------
// Shelf-head readiness cache: waiter-chain registration, wakeup, and
// squash/SSR invalidation (the event-driven replacement for per-cycle
// shelf polling). These drive a live core one cycle at a time --
// run(1) never engages quiescent-cycle skipping, so every observation
// below is of a real tick.
// ---------------------------------------------------------------------

namespace
{

TraceInst
aluInst(RegId dst, RegId s1 = kNoReg, RegId s2 = kNoReg)
{
    TraceInst t;
    t.op = OpClass::IntAlu;
    t.dst = dst;
    t.src1 = s1;
    t.src2 = s2;
    t.pc = 0x1000;
    return t;
}

TraceInst
loadInst(RegId dst, Addr addr)
{
    TraceInst t;
    t.op = OpClass::MemRead;
    t.dst = dst;
    t.addr = addr;
    t.size = 8;
    t.pc = 0x1000;
    return t;
}

/** One core over hand-built or generated traces, cold data caches. */
struct ShelfHarness
{
    ShelfHarness(CoreParams p, std::vector<Trace> traces_in,
                 bool warm_data = false)
        : params(std::move(p)), traces(std::move(traces_in))
    {
        std::vector<const Trace *> ptrs;
        for (const auto &tr : traces) {
            ptrs.push_back(&tr);
            for (const auto &inst : tr) {
                mem.warmInst(inst.pc);
                if (warm_data && inst.isMem())
                    mem.warmData(inst.addr);
            }
        }
        core = std::make_unique<Core>(params, mem, ptrs);
        core->setCheckInvariants(true);
    }

    /** Threads whose shelf head holds a waiter on any tag. */
    uint64_t
    waiterThreads() const
    {
        uint64_t m = 0;
        for (Tag t = 0; t < static_cast<Tag>(params.numTags()); ++t)
            m |= core->shelfTagWaiterMask(t);
        return m;
    }

    CoreParams params;
    MemHierarchy mem;
    std::vector<Trace> traces;
    std::unique_ptr<Core> core;
};

Trace
generated(const char *bench, uint64_t seed, size_t n, unsigned tid = 0)
{
    TraceGenerator gen(spec2006Profile(bench), seed,
                       static_cast<Addr>(tid) << 30);
    return gen.generate(n);
}

} // namespace

TEST(ShelfWaiterChain, WakeupResolvesPendingOpsInOrder)
{
    // A cold load feeding an ALU: with everything steered to the
    // shelf, the dependent becomes head while its source tag is still
    // in flight, so the rebuild must register a waiter that the
    // load's announceReady() resolves -- and the head must not issue
    // before the cached ready cycle.
    std::vector<TraceInst> block;
    for (unsigned i = 0; i < 8; ++i) {
        block.push_back(loadInst(1, 0x800000 + 0x4000 * i));
        block.push_back(aluInst(2, 1, 1));
        block.push_back(aluInst(3));
    }
    Trace tr;
    for (unsigned rep = 0; rep < 64; ++rep)
        for (auto inst : block) {
            inst.pc = 0x1000 + 4 * (tr.size() % 512);
            tr.push_back(inst);
        }

    ShelfHarness h(shelfCore(1, true, SteerPolicyKind::AlwaysShelf),
                   { tr });
    Core &core = *h.core;

    bool saw_pending = false, saw_wakeup = false, saw_issue = false;
    const DynInst *pending_head = nullptr;
    Cycle ready_at = 0;
    for (unsigned c = 0; c < 4000; ++c) {
        core.run(1);
        const DynInst *head = core.shelfHeadCached(0);
        if (!saw_pending) {
            if (head && core.shelfHeadPendingOps(0)) {
                // Registration: the pending slot must be backed by a
                // waiter bit some producer will clear.
                EXPECT_EQ(h.waiterThreads() & 1u, 1u);
                saw_pending = true;
                pending_head = head;
            }
        } else if (!saw_wakeup) {
            if (head != pending_head) {
                saw_pending = false; // squashed/advanced; rearm
            } else if (!core.shelfHeadPendingOps(0)) {
                // Wakeup: every slot resolved, waiter bits gone, and
                // the cached ready cycle is in announceReady()'s
                // hands, never before the probe observed the wait.
                EXPECT_EQ(h.waiterThreads() & 1u, 0u);
                ready_at = core.shelfHeadOperandsReadyAt(0);
                saw_wakeup = true;
            }
        } else if (head != pending_head) {
            // Head advance (issue resets the cache): issue order
            // respects the cached operand-ready cycle.
            EXPECT_GE(core.cycle(), ready_at);
            saw_issue = true;
            break;
        }
    }
    EXPECT_TRUE(saw_pending);
    EXPECT_TRUE(saw_wakeup);
    EXPECT_TRUE(saw_issue);
}

TEST(ShelfWaiterChain, SquashMidChainLeavesNoStaleWaiters)
{
    // Mispredict-heavy mix with cold data caches: shelf heads block
    // on in-flight loads and squashes cut the chains mid-wait. The
    // incremental-consistency invariant -- every waiter bit points at
    // a live cached head that is actually pending -- must hold on
    // every cycle, or a squash left a stale registration behind.
    ShelfHarness h(shelfCore(2, true),
                   { generated("gcc", 11, 20000, 0),
                     generated("mcf", 12, 20000, 1) });
    Core &core = *h.core;

    unsigned waiter_cycles = 0;
    for (unsigned c = 0; c < 4000; ++c) {
        core.run(1);
        uint64_t threads = h.waiterThreads();
        waiter_cycles += threads != 0;
        while (threads) {
            unsigned tid = __builtin_ctzll(threads);
            threads &= threads - 1;
            ASSERT_NE(core.shelfHeadCached(tid), nullptr)
                << "stale waiter for empty head, cycle "
                << core.cycle();
            ASSERT_NE(core.shelfHeadPendingOps(tid), 0u)
                << "waiter bit without pending slot, cycle "
                << core.cycle();
        }
    }
    // The run must actually have exercised chains and squashes.
    EXPECT_GT(waiter_cycles, 0u);
    EXPECT_GT(core.coreStatistics().squashes, 0u);
}

TEST(ShelfWaiterChain, SsrWindowCachedOnlyAfterRunLatchAndRespected)
{
    // Conservative shelf design: the speculation-window check is the
    // binding constraint, so the cached earliest-eligible cycle is
    // hot. Two invalidation rules observable from outside: a valid
    // window implies the run latch already fired for a cached head,
    // and (transition-stable decay) a head never issues before the
    // window cached on the previous cycle -- unless a squash reset it.
    ShelfHarness h(shelfCore(1, false),
                   { generated("gcc", 13, 20000) });
    Core &core = *h.core;

    const DynInst *prev_head = nullptr;
    bool prev_valid = false;
    Cycle prev_eligible = 0;
    uint64_t prev_squashes = 0;
    unsigned valid_cycles = 0, issue_checks = 0;
    for (unsigned c = 0; c < 6000; ++c) {
        core.run(1);
        const DynInst *head = core.shelfHeadCached(0);
        bool valid = core.shelfHeadSsrValid(0);
        uint64_t squashes = core.coreStatistics().squashes;
        if (valid) {
            ++valid_cycles;
            ASSERT_NE(head, nullptr);
            ASSERT_TRUE(!head->firstInRun || head->ssrLoaded)
                << "window cached before the SSR run latch, cycle "
                << core.cycle();
        }
        if (prev_valid && prev_head && head != prev_head &&
            squashes == prev_squashes) {
            // The old head issued (squash filtered out): its cached
            // window must have expired by now.
            EXPECT_GE(core.cycle(), prev_eligible);
            ++issue_checks;
        }
        prev_head = head;
        prev_valid = valid;
        prev_eligible = core.shelfHeadSsrEligibleAt(0);
        prev_squashes = squashes;
    }
    EXPECT_GT(valid_cycles, 0u);
    EXPECT_GT(issue_checks, 0u);
}

// ---------------------------------------------------------------------
// Quiescent-cycle skipping: fast-forwarding dead cycles must be an
// implementation detail -- every architectural event, every counter,
// and the exact commit stream must match a core that ticks through
// the same cycles one by one.
// ---------------------------------------------------------------------

namespace
{

/** Step a core in chunks (large enough to let spans form) and
 * compare the complete observable state against the reference at
 * every chunk boundary; any per-cycle counter divergence inside a
 * chunk surfaces at its end. */
void
expectCycleExact(const CoreParams &base, const char *label)
{
    const Cycle kChunk = 500;
    const unsigned kChunks = 12;

    CoreParams ref_p = base, skip_p = base;
    ref_p.skipQuiescentCycles = false;
    skip_p.skipQuiescentCycles = true;

    const char *names[4] = { "gcc", "mcf", "milc", "omnetpp" };
    std::vector<Trace> traces;
    for (unsigned t = 0; t < base.threads; ++t)
        traces.push_back(generated(names[t % 4], 21 + t, 20000, t));

    // Cold data caches: long MSHR stalls are exactly the dead spans
    // the skipper targets.
    ShelfHarness ref(ref_p, traces), skip(skip_p, traces);
    ref.core->setRetireLog(100000);
    skip.core->setRetireLog(100000);

    static_assert(sizeof(EventCounts) % sizeof(uint64_t) == 0,
                  "EventCounts compared word-wise below");

    for (unsigned chunk = 1; chunk <= kChunks; ++chunk) {
        ref.core->run(kChunk);
        skip.core->run(kChunk);
        SCOPED_TRACE(std::string(label) + " after cycle " +
                     std::to_string(chunk * kChunk));
        ASSERT_EQ(ref.core->cycle(), skip.core->cycle());

        // Commit stream: identical instructions in identical order.
        for (ThreadID t = 0;
             t < static_cast<ThreadID>(base.threads); ++t) {
            ASSERT_EQ(ref.core->retired(t), skip.core->retired(t));
            ASSERT_EQ(ref.core->retiredTraceIndices(t),
                      skip.core->retiredTraceIndices(t));
        }

        // Microarchitectural event counts, word by word.
        const EventCounts &re = ref.core->eventCounts();
        const EventCounts &se = skip.core->eventCounts();
        const uint64_t *rw = reinterpret_cast<const uint64_t *>(&re);
        const uint64_t *sw = reinterpret_cast<const uint64_t *>(&se);
        for (size_t i = 0;
             i < sizeof(EventCounts) / sizeof(uint64_t); ++i)
            ASSERT_EQ(rw[i], sw[i]) << "EventCounts word " << i;

        // Aggregate stats -- including the bit-exact occupancy
        // averages -- except the two skip-bookkeeping counters.
        const CoreStats &rs = ref.core->coreStatistics();
        const CoreStats &ss = skip.core->coreStatistics();
        ASSERT_EQ(rs.cycles, ss.cycles);
        ASSERT_EQ(rs.squashes, ss.squashes);
        ASSERT_EQ(rs.branchSquashes, ss.branchSquashes);
        ASSERT_EQ(rs.memOrderSquashes, ss.memOrderSquashes);
        ASSERT_EQ(rs.dispatchStalls.iqFull, ss.dispatchStalls.iqFull);
        ASSERT_EQ(rs.dispatchStalls.robFull,
                  ss.dispatchStalls.robFull);
        ASSERT_EQ(rs.dispatchStalls.lqFull, ss.dispatchStalls.lqFull);
        ASSERT_EQ(rs.dispatchStalls.sqFull, ss.dispatchStalls.sqFull);
        ASSERT_EQ(rs.dispatchStalls.shelfFull,
                  ss.dispatchStalls.shelfFull);
        ASSERT_EQ(rs.dispatchStalls.physRegs,
                  ss.dispatchStalls.physRegs);
        ASSERT_EQ(rs.dispatchStalls.extTags,
                  ss.dispatchStalls.extTags);
        ASSERT_EQ(rs.iqOccupancy.samples(), ss.iqOccupancy.samples());
        ASSERT_EQ(rs.iqOccupancy.mean(), ss.iqOccupancy.mean());
        ASSERT_EQ(rs.shelfOccupancy.samples(),
                  ss.shelfOccupancy.samples());
        ASSERT_EQ(rs.shelfOccupancy.mean(), ss.shelfOccupancy.mean());
        ASSERT_EQ(rs.robOccupancy.samples(),
                  ss.robOccupancy.samples());
        ASSERT_EQ(rs.robOccupancy.mean(), ss.robOccupancy.mean());
    }

    // The skipping core must actually have skipped, or this test
    // proved nothing.
    EXPECT_EQ(ref.core->coreStatistics().quiesceSkippedCycles, 0u);
    EXPECT_GT(skip.core->coreStatistics().quiesceSkippedCycles, 0u)
        << label;
}

} // namespace

TEST(QuiesceDifferential, Base64SingleThread)
{
    expectCycleExact(baseCore64(1), "base64-1t");
}

TEST(QuiesceDifferential, ShelfOptSingleThread)
{
    expectCycleExact(shelfCore(1, true), "shelf-opt-1t");
}

TEST(QuiesceDifferential, ShelfOptFourThread)
{
    expectCycleExact(shelfCore(4, true), "shelf-opt-4t");
}

TEST(QuiesceDifferential, ShelfConsTwoThreadTso)
{
    // TSO adds the blocked-shelf-retirement re-arm path to the
    // skipper's inert-event proof; cover it explicitly.
    CoreParams p = shelfCore(2, false);
    p.memModel = CoreParams::MemModel::TSO;
    expectCycleExact(p, "shelf-cons-2t-tso");
}
