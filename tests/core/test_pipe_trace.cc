/**
 * @file
 * Tests for the pipeline event tracer, including the strongest
 * schedule property available from the outside: every instruction
 * walks the stages in order (fetch -> dispatch -> issue -> complete
 * -> retire) at non-decreasing cycles, squashed instructions never
 * retire, and retired instructions passed through every stage.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/core.hh"
#include "mem/hierarchy.hh"
#include "workload/generator.hh"
#include "workload/spec2006.hh"

using namespace shelf;

namespace
{

struct TraceEvent
{
    Cycle cycle;
    int tid;
    SeqNum seq;
    std::string stage;
};

std::vector<TraceEvent>
collectTrace(const CoreParams &p, Cycle cycles)
{
    const char *names[4] = { "gcc", "mcf", "hmmer", "gobmk" };
    std::vector<Trace> traces;
    MemHierarchy mem;
    for (unsigned t = 0; t < p.threads; ++t) {
        TraceGenerator gen(spec2006Profile(names[t % 4]), 5 + t,
                           static_cast<Addr>(t) << 30);
        traces.push_back(gen.generate(20000));
        for (const auto &inst : traces.back()) {
            mem.warmInst(inst.pc);
            if (inst.isMem())
                mem.warmData(inst.addr);
        }
    }
    std::vector<const Trace *> ptrs;
    for (const auto &tr : traces)
        ptrs.push_back(&tr);
    Core core(p, mem, ptrs);

    std::vector<TraceEvent> events;
    core.setTraceSink([&events](const std::string &line) {
        TraceEvent ev;
        char stage[32] = {};
        unsigned long long cycle = 0, seq = 0;
        int tid = 0;
        // "<cycle>: t<tid> #<seq> <stage> <disasm>"
        int n = sscanf(line.c_str(), " %llu: t%d #%llu %31s", &cycle,
                       &tid, &seq, stage);
        ASSERT_EQ(n, 4) << "unparseable trace line: " << line;
        ev.cycle = cycle;
        ev.tid = tid;
        ev.seq = seq;
        ev.stage = stage;
        events.push_back(ev);
    });
    core.run(cycles);
    return events;
}

int
stageRank(const std::string &stage)
{
    if (stage == "fetch")
        return 0;
    if (stage.rfind("dispatch", 0) == 0)
        return 1;
    if (stage.rfind("issue", 0) == 0)
        return 2;
    if (stage == "complete")
        return 3;
    if (stage.rfind("retire", 0) == 0)
        return 4;
    if (stage == "squash")
        return 5; // can interleave anywhere after fetch
    return -1;
}

} // namespace

TEST(PipeTrace, EveryLineParsesAndStagesKnown)
{
    auto events = collectTrace(shelfCore(4, true), 1500);
    ASSERT_GT(events.size(), 500u);
    for (const auto &ev : events)
        EXPECT_GE(stageRank(ev.stage), 0) << ev.stage;
}

TEST(PipeTrace, StageOrderPerInstruction)
{
    auto events = collectTrace(shelfCore(4, true), 2500);
    // Group by (tid, seq); events arrive in emission order.
    std::map<std::pair<int, SeqNum>, std::vector<TraceEvent>> per;
    for (const auto &ev : events)
        per[{ ev.tid, ev.seq }].push_back(ev);

    size_t retired = 0, squashed = 0;
    for (const auto &[key, evs] : per) {
        bool saw_squash = false;
        int last_rank = -1;
        Cycle last_cycle = 0;
        for (const auto &ev : evs) {
            EXPECT_GE(ev.cycle, last_cycle)
                << "time ran backwards for t" << key.first << " #"
                << key.second;
            last_cycle = ev.cycle;
            if (ev.stage == "squash") {
                saw_squash = true;
                continue;
            }
            ASSERT_FALSE(saw_squash)
                << "activity after squash for t" << key.first
                << " #" << key.second << ": " << ev.stage;
            int rank = stageRank(ev.stage);
            EXPECT_GT(rank, last_rank)
                << "stage order violated for t" << key.first << " #"
                << key.second << ": " << ev.stage;
            last_rank = rank;
            if (rank == 4)
                ++retired;
        }
        squashed += saw_squash;
    }
    EXPECT_GT(retired, 200u);
    EXPECT_GT(squashed, 0u);
}

TEST(PipeTrace, RetiredInstructionsPassedAllStages)
{
    auto events = collectTrace(baseCore64(2), 2000);
    std::map<std::pair<int, SeqNum>, unsigned> mask;
    for (const auto &ev : events) {
        int rank = stageRank(ev.stage);
        if (rank >= 0 && rank <= 4)
            mask[{ ev.tid, ev.seq }] |= 1u << rank;
    }
    size_t checked = 0;
    for (const auto &[key, m] : mask) {
        if (m & (1u << 4)) { // retired
            EXPECT_EQ(m, 0x1Fu)
                << "t" << key.first << " #" << key.second
                << " retired without passing every stage";
            ++checked;
        }
    }
    EXPECT_GT(checked, 300u);
}

TEST(PipeTrace, DisabledByDefaultCostsNothing)
{
    // No sink installed: the trace path must not emit or crash.
    auto events_none = 0;
    (void)events_none;
    CoreParams p = baseCore64(1);
    Trace tr = TraceGenerator(spec2006Profile("hmmer"), 3, 0)
        .generate(5000);
    MemHierarchy mem;
    for (const auto &inst : tr)
        mem.warmInst(inst.pc);
    Core core(p, mem, { &tr });
    core.run(500);
    EXPECT_GT(core.coreStatistics().totalRetired(), 0u);
}
