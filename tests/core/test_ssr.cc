/**
 * @file
 * Unit tests for the speculation shift registers (paper section
 * III-B, Figure 5) in all three designs the paper discusses: a
 * single shared register, the proposed two-register design, and the
 * precise (rejected-as-costly) per-run design.
 */

#include <gtest/gtest.h>

#include "core/ssr.hh"

using namespace shelf;

TEST(SSR, StartsClear)
{
    SpecShiftRegisters ssr(2);
    EXPECT_EQ(ssr.iqValue(0), 0u);
    EXPECT_EQ(ssr.shelfValue(0), 0u);
    EXPECT_TRUE(ssr.shelfMayIssue(0, 0, 0));
}

TEST(SSR, IqIssueTakesMaximum)
{
    SpecShiftRegisters ssr(1);
    ssr.iqIssue(0, 5, 0);
    ssr.iqIssue(0, 3, 0);
    EXPECT_EQ(ssr.iqValue(0), 5u);
    ssr.iqIssue(0, 9, 0);
    EXPECT_EQ(ssr.iqValue(0), 9u);
}

TEST(SSR, TickDecrementsBoth)
{
    SpecShiftRegisters ssr(1);
    ssr.iqIssue(0, 2, 0);
    ssr.loadShelfFromIq(0, 0);
    ssr.tick();
    EXPECT_EQ(ssr.iqValue(0), 1u);
    EXPECT_EQ(ssr.shelfValue(0), 1u);
    ssr.tick();
    ssr.tick(); // saturates at zero
    EXPECT_EQ(ssr.iqValue(0), 0u);
    EXPECT_EQ(ssr.shelfValue(0), 0u);
}

TEST(SSR, ShelfGateComparesExecutionLatency)
{
    SpecShiftRegisters ssr(1);
    ssr.iqIssue(0, 4, 0);
    ssr.loadShelfFromIq(0, 0);
    // A shelf instruction may issue only if its own latency covers
    // the remaining speculation window.
    EXPECT_FALSE(ssr.shelfMayIssue(0, 3, 0));
    EXPECT_TRUE(ssr.shelfMayIssue(0, 4, 0));
    EXPECT_TRUE(ssr.shelfMayIssue(0, 12, 0));
}

TEST(SSR, TwoDesignAvoidsStarvation)
{
    // The two-SSR design's whole point: younger IQ instructions that
    // issue after the copy must not push the shelf SSR.
    SpecShiftRegisters ssr(1, SsrDesign::Two);
    ssr.iqIssue(0, 2, 0);
    ssr.loadShelfFromIq(0, 0);
    ssr.iqIssue(0, 30, 1); // younger run issues speculatively
    EXPECT_EQ(ssr.shelfValue(0), 2u);
    EXPECT_TRUE(ssr.shelfMayIssue(0, 2, 0));
}

TEST(SSR, SingleDesignSuffersStarvation)
{
    // With one shared register, the younger instruction's delay
    // leaks into the shelf's gate (the pathology of section III-B).
    SpecShiftRegisters ssr(1, SsrDesign::Single);
    ssr.iqIssue(0, 2, 0);
    ssr.iqIssue(0, 30, 1);
    EXPECT_EQ(ssr.shelfValue(0), 30u);
    EXPECT_FALSE(ssr.shelfMayIssue(0, 2, 0));
}

TEST(SSR, PerRunDesignIsPrecise)
{
    SpecShiftRegisters ssr(1, SsrDesign::PerRun);
    ssr.iqIssue(0, 2, 0);  // elder run 0
    ssr.iqIssue(0, 30, 2); // younger run 2
    // A shelf instruction of run 1 waits on run 0 but not run 2.
    EXPECT_EQ(ssr.shelfValue(0, 1), 2u);
    EXPECT_TRUE(ssr.shelfMayIssue(0, 2, 1));
    // A shelf instruction of run 2 waits on everything elder.
    EXPECT_EQ(ssr.shelfValue(0, 2), 30u);
    EXPECT_EQ(ssr.liveRuns(0), 2u);
}

TEST(SSR, PerRunEntriesExpire)
{
    SpecShiftRegisters ssr(1, SsrDesign::PerRun);
    ssr.iqIssue(0, 2, 0);
    ssr.tick();
    ssr.tick();
    EXPECT_EQ(ssr.liveRuns(0), 0u);
    EXPECT_TRUE(ssr.shelfMayIssue(0, 0, 5));
}

TEST(SSR, ShelfSpeculativeIssueProtectsYoungerShelf)
{
    for (auto design : { SsrDesign::Single, SsrDesign::Two,
                         SsrDesign::PerRun }) {
        SpecShiftRegisters ssr(1, design);
        ssr.shelfIssueSpec(0, 6, 0);
        EXPECT_GE(ssr.shelfValue(0, 0), 6u) << ssrDesignName(design);
        EXPECT_FALSE(ssr.shelfMayIssue(0, 1, 0));
    }
}

TEST(SSR, ThreadsIndependent)
{
    SpecShiftRegisters ssr(2);
    ssr.iqIssue(0, 7, 0);
    EXPECT_EQ(ssr.iqValue(1), 0u);
    ssr.loadShelfFromIq(1, 0);
    EXPECT_EQ(ssr.shelfValue(1), 0u);
}

TEST(SSR, ClearResetsThread)
{
    SpecShiftRegisters ssr(1, SsrDesign::PerRun);
    ssr.iqIssue(0, 9, 3);
    ssr.shelfIssueSpec(0, 5, 3);
    ssr.clear(0);
    EXPECT_EQ(ssr.iqValue(0), 0u);
    EXPECT_EQ(ssr.shelfValue(0, 3), 0u);
    EXPECT_EQ(ssr.liveRuns(0), 0u);
}

TEST(SSR, DesignNames)
{
    EXPECT_STREQ(ssrDesignName(SsrDesign::Single), "single");
    EXPECT_STREQ(ssrDesignName(SsrDesign::Two), "two");
    EXPECT_STREQ(ssrDesignName(SsrDesign::PerRun), "per-run");
}
