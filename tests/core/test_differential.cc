/**
 * @file
 * Differential correctness tests: every configuration of the core
 * (baseline, shelf variants, SSR designs, release policies, fetch
 * policies) must commit exactly the same per-thread instruction
 * stream -- the trace, as a contiguous prefix, each instruction
 * exactly once -- regardless of how the microarchitecture schedules
 * it. This is the strongest end-to-end check available to a timing
 * model without architectural values.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/core.hh"
#include "mem/hierarchy.hh"
#include "workload/generator.hh"
#include "workload/spec2006.hh"

using namespace shelf;

namespace
{

constexpr size_t kLogLimit = 3000;

struct DiffParam
{
    std::string label;
    CoreParams params;
};

std::vector<uint64_t>
runAndCollect(const CoreParams &p, ThreadID tid, Cycle cycles,
              uint64_t seed)
{
    const char *names[4] = { "gcc", "mcf", "hmmer", "gobmk" };
    std::vector<Trace> traces;
    MemHierarchy mem;
    for (unsigned t = 0; t < p.threads; ++t) {
        TraceGenerator gen(spec2006Profile(names[t % 4]), seed + t,
                           static_cast<Addr>(t) << 30);
        traces.push_back(gen.generate(40000));
        for (const auto &inst : traces.back()) {
            mem.warmInst(inst.pc);
            if (inst.isMem())
                mem.warmData(inst.addr);
        }
    }
    std::vector<const Trace *> ptrs;
    for (const auto &tr : traces)
        ptrs.push_back(&tr);
    Core core(p, mem, ptrs);
    core.setCheckInvariants(true);
    core.setRetireLog(kLogLimit);
    core.run(cycles);
    return core.retiredTraceIndices(tid);
}

/**
 * The retired trace indices must cover 0..n-1 exactly once each --
 * except that, because shelf instructions retire out of order, the
 * cutoff at an arbitrary cycle may leave gaps within the trailing
 * in-flight window (e.g. a cache-missing elder load still in flight
 * while younger shelf instructions already wrote back). Duplicates
 * are bugs anywhere; gaps are bugs unless they sit within the last
 * @p window indices of the maximum committed index.
 */
void
expectContiguousPrefix(std::vector<uint64_t> log,
                       const std::string &label,
                       uint64_t window = 512)
{
    ASSERT_FALSE(log.empty()) << label;
    std::sort(log.begin(), log.end());
    uint64_t max_idx = log.back();
    uint64_t expect = 0;
    for (size_t i = 0; i < log.size(); ++i) {
        ASSERT_FALSE(i > 0 && log[i] == log[i - 1])
            << label << ": instruction " << log[i]
            << " committed twice";
        while (expect < log[i]) {
            // A missing index: only tolerable at the cutoff edge.
            ASSERT_GT(expect + window, max_idx)
                << label << ": committed stream skipped " << expect;
            ++expect;
        }
        ++expect;
    }
}

std::vector<DiffParam>
allConfigs()
{
    std::vector<DiffParam> v;
    v.push_back({ "baseline", baseCore64(4) });
    v.push_back({ "base128", baseCore128(4) });
    v.push_back({ "shelf_cons", shelfCore(4, false) });
    v.push_back({ "shelf_opt", shelfCore(4, true) });
    v.push_back({ "shelf_oracle",
                  shelfCore(4, true, SteerPolicyKind::Oracle) });
    v.push_back({ "always_shelf",
                  shelfCore(4, true, SteerPolicyKind::AlwaysShelf) });

    CoreParams single_ssr = shelfCore(4, true);
    single_ssr.ssrDesign = SsrDesign::Single;
    v.push_back({ "ssr_single", single_ssr });

    CoreParams per_run = shelfCore(4, true);
    per_run.ssrDesign = SsrDesign::PerRun;
    v.push_back({ "ssr_per_run", per_run });

    CoreParams release_wb = shelfCore(4, true);
    release_wb.shelfReleaseAtWriteback = true;
    v.push_back({ "release_at_writeback", release_wb });

    CoreParams rr = shelfCore(4, true);
    rr.fetchPolicy = CoreParams::FetchPolicy::RoundRobin;
    v.push_back({ "round_robin_fetch", rr });

    CoreParams slack = shelfCore(4, true);
    slack.steerSlack = 4;
    v.push_back({ "steer_slack4", slack });
    return v;
}

} // namespace

class DifferentialTest : public ::testing::TestWithParam<DiffParam>
{};

TEST_P(DifferentialTest, CommitsTheTraceInOrderPerThread)
{
    const DiffParam &dp = GetParam();
    for (ThreadID tid = 0; tid < 4; ++tid) {
        auto log = runAndCollect(dp.params, tid, 5000, 17);
        expectContiguousPrefix(std::move(log),
                               dp.label + " thread " +
                                   std::to_string(tid));
    }
}

TEST_P(DifferentialTest, SameCommittedSetAsBaseline)
{
    const DiffParam &dp = GetParam();
    // Collect both; the shorter committed prefix must be a prefix of
    // the longer one's sorted set -- trivially true once both are
    // contiguous prefixes, so check lengths are sane and non-zero.
    auto a = runAndCollect(baseCore64(4), 0, 5000, 29);
    auto b = runAndCollect(dp.params, 0, 5000, 29);
    expectContiguousPrefix(a, "baseline");
    expectContiguousPrefix(b, dp.label);
    EXPECT_GT(a.size(), 100u);
    EXPECT_GT(b.size(), 100u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DifferentialTest, ::testing::ValuesIn(allConfigs()),
    [](const ::testing::TestParamInfo<DiffParam> &info) {
        return info.param.label;
    });
