/**
 * @file
 * Unit tests for the extended rename stage: dual RAT, physical and
 * extension free lists, shelf PRI reuse, retirement frees, and
 * walk-back recovery.
 */

#include <gtest/gtest.h>

#include "core/rename.hh"

using namespace shelf;

namespace
{

DynInst
makeInst(ThreadID tid, RegId dst, RegId s1, RegId s2, bool to_shelf)
{
    DynInst inst;
    inst.tid = tid;
    inst.si.op = OpClass::IntAlu;
    inst.si.dst = dst;
    inst.si.src1 = s1;
    inst.si.src2 = s2;
    inst.toShelf = to_shelf;
    return inst;
}

} // namespace

TEST(Rename, InitialMappingIdentityPerThread)
{
    RenameUnit ru(2, 2 * kNumArchRegs + 8, 4);
    EXPECT_EQ(ru.lookupPri(0, 0), 0);
    EXPECT_EQ(ru.lookupTag(0, 0), 0);
    EXPECT_EQ(ru.lookupPri(1, 0),
              static_cast<PRI>(kNumArchRegs));
    EXPECT_EQ(ru.freePhysRegs(), 8u);
    EXPECT_EQ(ru.freeExtTags(), 4u);
}

TEST(Rename, IqRenameAllocatesNewPriAndTag)
{
    RenameUnit ru(1, kNumArchRegs + 4, 4);
    DynInst inst = makeInst(0, 5, 1, 2, false);
    ASSERT_TRUE(ru.canRename(inst));
    ru.rename(inst);
    EXPECT_EQ(inst.srcPri[0], 1);
    EXPECT_EQ(inst.srcTag[1], 2);
    EXPECT_EQ(inst.prevPri, 5);
    EXPECT_EQ(inst.prevTag, 5);
    EXPECT_NE(inst.dstPri, 5);
    EXPECT_EQ(inst.dstTag, inst.dstPri); // original tag space
    EXPECT_EQ(ru.lookupPri(0, 5), inst.dstPri);
    EXPECT_EQ(ru.freePhysRegs(), 3u);
}

TEST(Rename, ShelfRenameReusesPriAllocatesExtTag)
{
    RenameUnit ru(1, kNumArchRegs + 4, 4);
    DynInst inst = makeInst(0, 5, 1, kNoReg, true);
    ru.rename(inst);
    EXPECT_EQ(inst.dstPri, 5); // reuses the existing register
    EXPECT_GE(inst.dstTag,
              static_cast<Tag>(kNumArchRegs + 4)); // extension space
    EXPECT_TRUE(ru.isExtTag(inst.dstTag));
    EXPECT_EQ(ru.lookupPri(0, 5), 5);        // PRI unchanged
    EXPECT_EQ(ru.lookupTag(0, 5), inst.dstTag); // tag updated
    EXPECT_EQ(ru.freePhysRegs(), 4u);        // no phys allocation
    EXPECT_EQ(ru.freeExtTags(), 3u);
}

TEST(Rename, ConsumerSeesShelfTag)
{
    RenameUnit ru(1, kNumArchRegs + 4, 4);
    DynInst producer = makeInst(0, 5, 1, kNoReg, true);
    ru.rename(producer);
    DynInst consumer = makeInst(0, 6, 5, kNoReg, false);
    ru.rename(consumer);
    EXPECT_EQ(consumer.srcTag[0], producer.dstTag);
    EXPECT_EQ(consumer.srcPri[0], producer.dstPri);
}

TEST(Rename, IqRetireFreesPrevPriAndExtTag)
{
    RenameUnit ru(1, kNumArchRegs + 4, 4);
    // Shelf write to r5 creates an extension-tag mapping...
    DynInst sh = makeInst(0, 5, kNoReg, kNoReg, true);
    ru.rename(sh);
    // ...then an IQ write to r5 picks up (pri=5, tag=ext).
    DynInst iq = makeInst(0, 5, kNoReg, kNoReg, false);
    ru.rename(iq);
    EXPECT_EQ(iq.prevPri, 5);
    EXPECT_EQ(iq.prevTag, sh.dstTag);
    unsigned phys_before = ru.freePhysRegs();
    unsigned ext_before = ru.freeExtTags();
    ru.retire(iq);
    EXPECT_EQ(ru.freePhysRegs(), phys_before + 1); // prev PRI freed
    EXPECT_EQ(ru.freeExtTags(), ext_before + 1);   // ext tag freed
}

TEST(Rename, ShelfRetireFreesOnlyExtTag)
{
    RenameUnit ru(1, kNumArchRegs + 4, 4);
    DynInst sh1 = makeInst(0, 5, kNoReg, kNoReg, true);
    ru.rename(sh1);
    DynInst sh2 = makeInst(0, 5, kNoReg, kNoReg, true);
    ru.rename(sh2);
    EXPECT_EQ(sh2.prevTag, sh1.dstTag);
    unsigned phys_before = ru.freePhysRegs();
    unsigned ext_before = ru.freeExtTags();
    ru.retire(sh2); // frees sh1's ext tag, never a PRI
    EXPECT_EQ(ru.freePhysRegs(), phys_before);
    EXPECT_EQ(ru.freeExtTags(), ext_before + 1);
}

TEST(Rename, FirstShelfRetireFreesNothing)
{
    RenameUnit ru(1, kNumArchRegs + 4, 4);
    DynInst sh = makeInst(0, 5, kNoReg, kNoReg, true);
    ru.rename(sh);
    // prevTag == prevPri == 5: architectural mapping, not freed.
    unsigned ext_before = ru.freeExtTags();
    unsigned phys_before = ru.freePhysRegs();
    ru.retire(sh);
    EXPECT_EQ(ru.freeExtTags(), ext_before);
    EXPECT_EQ(ru.freePhysRegs(), phys_before);
}

TEST(Rename, UnrenameRestoresMappingYoungestFirst)
{
    RenameUnit ru(1, kNumArchRegs + 4, 4);
    DynInst a = makeInst(0, 5, kNoReg, kNoReg, false);
    ru.rename(a);
    DynInst b = makeInst(0, 5, kNoReg, kNoReg, true);
    ru.rename(b);
    DynInst c = makeInst(0, 5, kNoReg, kNoReg, false);
    ru.rename(c);

    unsigned phys0 = ru.freePhysRegs();
    unsigned ext0 = ru.freeExtTags();
    ru.unrename(c);
    EXPECT_EQ(ru.lookupTag(0, 5), b.dstTag);
    EXPECT_EQ(ru.lookupPri(0, 5), b.dstPri);
    EXPECT_EQ(ru.freePhysRegs(), phys0 + 1);
    ru.unrename(b);
    EXPECT_EQ(ru.lookupTag(0, 5), a.dstTag);
    EXPECT_EQ(ru.freeExtTags(), ext0 + 1);
    ru.unrename(a);
    EXPECT_EQ(ru.lookupPri(0, 5), 5);
    EXPECT_EQ(ru.lookupTag(0, 5), 5);
}

TEST(Rename, OutOfOrderUnrenameDies)
{
    RenameUnit ru(1, kNumArchRegs + 4, 4);
    DynInst a = makeInst(0, 5, kNoReg, kNoReg, false);
    ru.rename(a);
    DynInst b = makeInst(0, 5, kNoReg, kNoReg, false);
    ru.rename(b);
    EXPECT_DEATH(ru.unrename(a), "out-of-order");
}

TEST(Rename, CanRenameRespectsFreeLists)
{
    RenameUnit ru(1, kNumArchRegs + 1, 1);
    DynInst iq1 = makeInst(0, 1, kNoReg, kNoReg, false);
    ru.rename(iq1);
    DynInst iq2 = makeInst(0, 2, kNoReg, kNoReg, false);
    EXPECT_FALSE(ru.canRename(iq2)); // phys exhausted
    DynInst sh1 = makeInst(0, 3, kNoReg, kNoReg, true);
    EXPECT_TRUE(ru.canRename(sh1)); // ext still available
    ru.rename(sh1);
    DynInst sh2 = makeInst(0, 4, kNoReg, kNoReg, true);
    EXPECT_FALSE(ru.canRename(sh2));
    // Instructions without destinations always rename.
    DynInst st = makeInst(0, kNoReg, 1, 2, false);
    EXPECT_TRUE(ru.canRename(st));
}

TEST(Rename, ResourceConservationOverChurn)
{
    RenameUnit ru(1, kNumArchRegs + 8, 8);
    std::vector<DynInst> live;
    unsigned total_phys = 8, total_ext = 8;
    for (int round = 0; round < 50; ++round) {
        // Allocate a few, retire a few, squash a few.
        for (int i = 0; i < 3; ++i) {
            DynInst inst = makeInst(
                0, static_cast<RegId>((round + i) % 12), kNoReg,
                kNoReg, i % 2 == 0);
            if (ru.canRename(inst)) {
                ru.rename(inst);
                live.push_back(inst);
            }
        }
        if (live.size() > 4) {
            // Retire the two oldest.
            ru.retire(live[0]);
            ru.retire(live[1]);
            live.erase(live.begin(), live.begin() + 2);
        }
        if (!live.empty() && round % 7 == 0) {
            ru.unrename(live.back());
            live.pop_back();
        }
    }
    // Free-list totals never exceed their capacity.
    EXPECT_LE(ru.freePhysRegs(), total_phys);
    EXPECT_LE(ru.freeExtTags(), total_ext);
    // Mapped PRIs stay unique.
    EXPECT_EQ(ru.mappedPhysCount(), kNumArchRegs);
}
