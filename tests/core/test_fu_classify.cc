/**
 * @file
 * Unit tests for the functional-unit pool and the in-sequence /
 * reordered classifier with its series-length histograms.
 */

#include <gtest/gtest.h>

#include "core/classify.hh"
#include "core/fu_pool.hh"
#include "core/params.hh"

using namespace shelf;

namespace
{

CoreParams
fourWide()
{
    CoreParams p = baseCore64(4);
    return p;
}

DynInst
classified(ThreadID tid, bool in_seq)
{
    DynInst inst;
    inst.tid = tid;
    inst.inSequence = in_seq;
    return inst;
}

} // namespace

TEST(FUPool, PortLimits)
{
    FUPool fu(fourWide()); // 4 ALU, 1 mul, 2 FP, 2 mem
    fu.beginCycle();
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(fu.canIssue(OpClass::IntAlu, 10));
        fu.issue(OpClass::IntAlu, 10, 1);
    }
    EXPECT_FALSE(fu.canIssue(OpClass::IntAlu, 10));
    EXPECT_FALSE(fu.canIssue(OpClass::Branch, 10)); // shares ALUs
    EXPECT_TRUE(fu.canIssue(OpClass::MemRead, 10));
}

TEST(FUPool, BeginCycleResetsPorts)
{
    FUPool fu(fourWide());
    fu.beginCycle();
    fu.issue(OpClass::MemRead, 1, 1);
    fu.issue(OpClass::MemWrite, 1, 1);
    EXPECT_FALSE(fu.canIssue(OpClass::MemRead, 1));
    fu.beginCycle();
    EXPECT_TRUE(fu.canIssue(OpClass::MemRead, 2));
}

TEST(FUPool, UnpipelinedDivideOccupiesUnit)
{
    FUPool fu(fourWide());
    fu.beginCycle();
    EXPECT_TRUE(fu.canIssue(OpClass::IntDiv, 10));
    fu.issue(OpClass::IntDiv, 10, 12);
    fu.beginCycle();
    // Only one mul/div unit: busy until cycle 22.
    EXPECT_FALSE(fu.canIssue(OpClass::IntDiv, 15));
    EXPECT_TRUE(fu.canIssue(OpClass::IntDiv, 22));
    // Pipelined multiply shares the port count but not the busy
    // tracking... the single unit is busy, yet multiplies are
    // pipelined through it in this model only when free that cycle.
    EXPECT_TRUE(fu.canIssue(OpClass::IntMult, 15));
}

TEST(FUPool, FpDivSeparateFromIntDiv)
{
    FUPool fu(fourWide());
    fu.beginCycle();
    fu.issue(OpClass::FloatDiv, 10, 12);
    fu.beginCycle();
    EXPECT_TRUE(fu.canIssue(OpClass::IntDiv, 11));
    // Two FP pipes: the second FloatDiv still fits.
    EXPECT_TRUE(fu.canIssue(OpClass::FloatDiv, 11));
    fu.issue(OpClass::FloatDiv, 11, 12);
    fu.beginCycle();
    EXPECT_FALSE(fu.canIssue(OpClass::FloatDiv, 12));
}

TEST(Classifier, CountsPerThread)
{
    Classifier c(2);
    c.recordRetire(classified(0, true));
    c.recordRetire(classified(0, false));
    c.recordRetire(classified(1, true));
    EXPECT_EQ(c.retired(0), 2u);
    EXPECT_EQ(c.inSequence(0), 1u);
    EXPECT_DOUBLE_EQ(c.inSequenceFraction(0), 0.5);
    EXPECT_DOUBLE_EQ(c.inSequenceFraction(1), 1.0);
    EXPECT_DOUBLE_EQ(c.inSequenceFraction(), 2.0 / 3.0);
}

TEST(Classifier, SeriesWeightedByLength)
{
    Classifier c(1);
    // in-seq run of 3, reordered run of 2, in-seq run of 1.
    for (int i = 0; i < 3; ++i)
        c.recordRetire(classified(0, true));
    for (int i = 0; i < 2; ++i)
        c.recordRetire(classified(0, false));
    c.recordRetire(classified(0, true));
    c.finalize();

    const auto &in_seq = c.inSeqSeries();
    EXPECT_DOUBLE_EQ(in_seq.bucket(3), 3.0); // weight = length
    EXPECT_DOUBLE_EQ(in_seq.bucket(1), 1.0);
    EXPECT_DOUBLE_EQ(in_seq.totalWeight(), 4.0);
    const auto &reord = c.reorderedSeries();
    EXPECT_DOUBLE_EQ(reord.bucket(2), 2.0);
}

TEST(Classifier, ThreadsDoNotMergeSeries)
{
    Classifier c(2);
    c.recordRetire(classified(0, true));
    c.recordRetire(classified(1, true));
    c.recordRetire(classified(0, true));
    c.finalize();
    // Thread 0 contributes one series of length 2; thread 1 one of 1.
    EXPECT_DOUBLE_EQ(c.inSeqSeries().bucket(2), 2.0);
    EXPECT_DOUBLE_EQ(c.inSeqSeries().bucket(1), 1.0);
}

TEST(Classifier, ResetClears)
{
    Classifier c(1);
    c.recordRetire(classified(0, true));
    c.finalize();
    c.reset();
    EXPECT_EQ(c.totalRetired(), 0u);
    EXPECT_DOUBLE_EQ(c.inSeqSeries().totalWeight(), 0.0);
}
