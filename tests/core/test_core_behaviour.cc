/**
 * @file
 * Behavioural integration tests for mechanisms added on top of the
 * basic pipeline: dispatch-stall attribution, the optimistic vs
 * conservative same-cycle shelf issue assumption, fill-forwarded
 * instruction fetch, and thread-local store-set waits.
 */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "mem/hierarchy.hh"
#include "sim/system.hh"
#include "workload/generator.hh"
#include "workload/spec2006.hh"

using namespace shelf;

namespace
{

/** A mixed realistic run returning the live core for inspection. */
struct SysRun
{
    explicit SysRun(CoreParams p, Cycle cycles = 6000)
    {
        SystemConfig cfg;
        cfg.core = std::move(p);
        cfg.benchmarks.assign(cfg.core.threads, "gcc");
        if (cfg.core.threads == 4)
            cfg.benchmarks = { "gcc", "mcf", "hmmer", "milc" };
        cfg.warmupCycles = 1000;
        cfg.measureCycles = cycles;
        sys = std::make_unique<System>(cfg);
        result = sys->run();
    }

    std::unique_ptr<System> sys;
    SystemResult result;
};

} // namespace

TEST(CoreBehaviour, DispatchStallsAttributed)
{
    SysRun run(baseCore64(4));
    const auto &st = run.sys->core().coreStatistics().dispatchStalls;
    // Small per-thread ROB partitions dominate the stalls on a
    // memory-heavy 4-thread mix.
    EXPECT_GT(st.robFull, 0u);
    // No shelf in the baseline.
    EXPECT_EQ(st.shelfFull, 0u);
    EXPECT_EQ(st.extTags, 0u);
}

TEST(CoreBehaviour, ShelfRelievesRobPressure)
{
    SysRun base(baseCore64(4));
    SysRun sh(shelfCore(4, true));
    const auto &sb = base.sys->core().coreStatistics();
    const auto &ss = sh.sys->core().coreStatistics();
    // The shelf absorbs in-sequence instructions, so ROB-full stalls
    // per retired instruction must drop relative to the baseline
    // (raw counts can rise because the shelf machine dispatches and
    // retires more work in the same cycles).
    double base_rate = static_cast<double>(sb.dispatchStalls.robFull)
        / sb.totalRetired();
    double shelf_rate = static_cast<double>(ss.dispatchStalls.robFull)
        / ss.totalRetired();
    EXPECT_LT(shelf_rate, base_rate * 1.25);
    EXPECT_GT(ss.shelfOccupancy.mean(), 1.0);
}

TEST(CoreBehaviour, ShelfImprovesThroughputOnMixes)
{
    SysRun base(baseCore64(4));
    SysRun sh(shelfCore(4, true));
    // On this memory/compute mix the shelf should not lose, and
    // typically wins a few percent.
    EXPECT_GE(sh.result.totalIpc, base.result.totalIpc * 0.99);
}

TEST(CoreBehaviour, Base128UpperBoundsShelf)
{
    SysRun sh(shelfCore(4, true));
    SysRun big(baseCore128(4));
    EXPECT_GE(big.result.totalIpc, sh.result.totalIpc * 0.97);
}

TEST(CoreBehaviour, OptimisticAtLeastAsGoodOnAverage)
{
    // Same-cycle issue-tracking visibility can only remove shelf
    // wakeup latency; allow small noise in either direction but the
    // two must be close.
    SysRun cons(shelfCore(4, false));
    SysRun opt(shelfCore(4, true));
    EXPECT_NEAR(opt.result.totalIpc, cons.result.totalIpc,
                0.15 * cons.result.totalIpc);
}

TEST(CoreBehaviour, ExtTagsNeverDeadlock)
{
    // Force extreme shelving (always-shelf) on a long run: the
    // auto-sized extension tag space must never wedge dispatch.
    CoreParams p = shelfCore(4, true, SteerPolicyKind::AlwaysShelf);
    SysRun run(p, 8000);
    for (const auto &th : run.result.threads)
        EXPECT_GT(th.instructions, 100u) << th.benchmark;
}

TEST(CoreBehaviour, TinyExtTagSpaceStallsButRecovers)
{
    // A deliberately small extension space must produce ext-tag
    // stalls yet still make forward progress (tags recycle through
    // retirement as long as some thread can dispatch).
    CoreParams p = shelfCore(4, true);
    p.extTags = 224; // just above the RAT worst case (192)
    SysRun run(p, 6000);
    for (const auto &th : run.result.threads)
        EXPECT_GT(th.instructions, 50u);
}

TEST(CoreBehaviour, StoreSetWaitsAreThreadLocal)
{
    // Cross-thread SSIT aliasing must never constrain a load: run a
    // store-heavy mix and check progress (a cross-thread wait cycle
    // would deadlock; see Core::sameThreadStoreWait).
    CoreParams p = shelfCore(4, true);
    SysRun run(p, 6000);
    EXPECT_GT(run.result.totalIpc, 0.05);
}

TEST(CoreBehaviour, InSequenceFractionsOrderedByThreads)
{
    // Fig. 1 trend on the big window with real profiles.
    double fracs[3];
    int i = 0;
    for (unsigned threads : { 1u, 2u, 4u }) {
        SysRun run(baseCore128(threads));
        fracs[i++] = run.result.inSeqFrac;
    }
    EXPECT_LT(fracs[0], fracs[2]);
}

TEST(CoreBehaviour, EnergyAccountsShelfTraffic)
{
    SysRun sh(shelfCore(4, true));
    EXPECT_GT(sh.result.events.shelfWrites, 0u);
    EXPECT_GT(sh.result.events.shelfIssues, 0u);
    EXPECT_EQ(sh.result.events.shelfWrites >=
                  sh.result.events.shelfIssues,
              true);
    SysRun base(baseCore64(4));
    EXPECT_EQ(base.result.events.shelfWrites, 0u);
}
