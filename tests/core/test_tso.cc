/**
 * @file
 * Tests for the TSO memory-model extension (paper section III-D's
 * discussion of stricter consistency): shelf writebacks deferred
 * behind incomplete elder loads, shelf stores occupying SQ entries,
 * and unchanged committed-stream correctness.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/core.hh"
#include "mem/hierarchy.hh"
#include "sim/system.hh"
#include "workload/generator.hh"
#include "workload/spec2006.hh"

using namespace shelf;

namespace
{

SystemResult
runModel(CoreParams::MemModel model, Cycle cycles = 6000)
{
    SystemConfig cfg;
    cfg.core = shelfCore(4, true);
    cfg.core.memModel = model;
    cfg.benchmarks = { "gcc", "mcf", "hmmer", "milc" };
    cfg.warmupCycles = 1000;
    cfg.measureCycles = cycles;
    return System(cfg).run();
}

} // namespace

TEST(TSO, RunsAndRetiresEverywhere)
{
    SystemResult res = runModel(CoreParams::MemModel::TSO);
    for (const auto &t : res.threads)
        EXPECT_GT(t.instructions, 50u) << t.benchmark;
}

TEST(TSO, NoFasterThanRelaxed)
{
    SystemResult relaxed = runModel(CoreParams::MemModel::Relaxed);
    SystemResult tso = runModel(CoreParams::MemModel::TSO);
    // Deferred shelf writebacks and SQ pressure can only cost
    // throughput (allow a little noise).
    EXPECT_LE(tso.totalIpc, relaxed.totalIpc * 1.03);
}

TEST(TSO, ShelfStoresOccupySq)
{
    SystemResult relaxed = runModel(CoreParams::MemModel::Relaxed);
    SystemResult tso = runModel(CoreParams::MemModel::TSO);
    // Every shelf store allocates an SQ entry under TSO, so SQ
    // writes rise for the same workload (store counts are close
    // since both run the same traces for the same cycles).
    double relaxed_rate =
        static_cast<double>(relaxed.events.sqWrites) /
        relaxed.events.renameOps;
    double tso_rate = static_cast<double>(tso.events.sqWrites) /
        tso.events.renameOps;
    EXPECT_GT(tso_rate, relaxed_rate);
}

TEST(TSO, NoCoalescingUnderTso)
{
    SystemConfig cfg;
    cfg.core = shelfCore(4, true);
    cfg.core.memModel = CoreParams::MemModel::TSO;
    cfg.benchmarks = { "lbm", "lbm", "lbm", "lbm" };
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 4000;
    System sys(cfg);
    sys.run();
    EXPECT_EQ(sys.core().lsqUnit().coalesces.value(), 0.0);
}

TEST(TSO, CommittedStreamStillCorrect)
{
    CoreParams p = shelfCore(4, true);
    p.memModel = CoreParams::MemModel::TSO;
    const char *names[4] = { "gcc", "mcf", "hmmer", "gobmk" };
    std::vector<Trace> traces;
    MemHierarchy mem;
    for (unsigned t = 0; t < 4; ++t) {
        TraceGenerator gen(spec2006Profile(names[t]), 31 + t,
                           static_cast<Addr>(t) << 30);
        traces.push_back(gen.generate(30000));
        for (const auto &inst : traces.back()) {
            mem.warmInst(inst.pc);
            if (inst.isMem())
                mem.warmData(inst.addr);
        }
    }
    std::vector<const Trace *> ptrs;
    for (const auto &tr : traces)
        ptrs.push_back(&tr);
    Core core(p, mem, ptrs);
    core.setCheckInvariants(true);
    core.setRetireLog(2000);
    core.run(4000);
    for (ThreadID tid = 0; tid < 4; ++tid) {
        auto log = core.retiredTraceIndices(tid);
        ASSERT_FALSE(log.empty());
        std::sort(log.begin(), log.end());
        uint64_t max_idx = log.back();
        uint64_t expect = 0;
        for (size_t i = 0; i < log.size(); ++i) {
            ASSERT_FALSE(i > 0 && log[i] == log[i - 1])
                << "duplicate commit under TSO";
            while (expect < log[i]) {
                ASSERT_GT(expect + 512, max_idx)
                    << "skipped instruction under TSO";
                ++expect;
            }
            ++expect;
        }
    }
}

TEST(TSO, ShelfWritebackDeferralObservable)
{
    // Under TSO the deferral mechanism should actually engage on a
    // memory-bound mix: shelf instructions retire later than their
    // completion would allow under the relaxed model, visible as a
    // lower shelf-steer payoff. Weak but direct observable: both
    // models steer similarly while TSO retires fewer instructions.
    SystemResult relaxed = runModel(CoreParams::MemModel::Relaxed);
    SystemResult tso = runModel(CoreParams::MemModel::TSO);
    EXPECT_NEAR(tso.shelfSteerFrac, relaxed.shelfSteerFrac, 0.2);
}
