/**
 * @file
 * Tests for the shadow-steering disagreement counter used by the
 * Figure 12 mis-steering measurement.
 */

#include <gtest/gtest.h>

#include "core/steer/shadow.hh"
#include "sim/system.hh"

using namespace shelf;

namespace
{

/** A policy with a fixed answer. */
class FixedSteering : public SteeringPolicy
{
  public:
    explicit FixedSteering(bool answer) : answer(answer) {}

    bool
    steerToShelf(const DynInst &inst, Cycle now) override
    {
        count(answer);
        ++calls;
        return answer;
    }

    void tick(Cycle now) override { ++ticks; }
    void squash(ThreadID tid, SeqNum gseq) override { ++squashes; }

    bool answer;
    int calls = 0;
    int ticks = 0;
    int squashes = 0;
};

} // namespace

TEST(ShadowSteering, CountsDisagreements)
{
    auto primary = std::make_unique<FixedSteering>(true);
    auto reference = std::make_unique<FixedSteering>(false);
    ShadowSteering shadow(std::move(primary), std::move(reference));

    DynInst inst;
    inst.tid = 0;
    inst.si.op = OpClass::IntAlu;
    EXPECT_TRUE(shadow.steerToShelf(inst, 0)); // primary drives
    EXPECT_DOUBLE_EQ(shadow.disagreements.value(), 1.0);
    EXPECT_DOUBLE_EQ(shadow.missteerFraction(), 1.0);
}

TEST(ShadowSteering, AgreementCountsZero)
{
    ShadowSteering shadow(std::make_unique<FixedSteering>(true),
                          std::make_unique<FixedSteering>(true));
    DynInst inst;
    inst.tid = 0;
    for (int i = 0; i < 5; ++i)
        shadow.steerToShelf(inst, i);
    EXPECT_DOUBLE_EQ(shadow.missteerFraction(), 0.0);
}

TEST(ShadowSteering, ForwardsLifecycleToBoth)
{
    auto p = std::make_unique<FixedSteering>(true);
    auto r = std::make_unique<FixedSteering>(false);
    FixedSteering *pp = p.get();
    FixedSteering *rr = r.get();
    ShadowSteering shadow(std::move(p), std::move(r));
    shadow.tick(1);
    shadow.squash(0, 10);
    EXPECT_EQ(pp->ticks, 1);
    EXPECT_EQ(rr->ticks, 1);
    EXPECT_EQ(pp->squashes, 1);
    EXPECT_EQ(rr->squashes, 1);
}

TEST(ShadowSteering, EndToEndMissteerPopulated)
{
    SystemConfig cfg;
    cfg.core = shelfCore(4, true);
    cfg.core.shadowOracle = true;
    cfg.benchmarks = { "gcc", "hmmer", "milc", "sjeng" };
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 4000;
    SystemResult res = System(cfg).run();
    // Practical and oracle genuinely disagree on some instructions
    // (the paper reports ~16%), but mostly agree.
    EXPECT_GT(res.missteerFrac, 0.02);
    EXPECT_LT(res.missteerFrac, 0.6);
}

TEST(ShadowSteering, NotPopulatedWithoutFlag)
{
    SystemConfig cfg;
    cfg.core = shelfCore(4, true);
    cfg.benchmarks = { "gcc", "hmmer", "milc", "sjeng" };
    cfg.warmupCycles = 500;
    cfg.measureCycles = 1000;
    SystemResult res = System(cfg).run();
    EXPECT_DOUBLE_EQ(res.missteerFrac, 0.0);
}
