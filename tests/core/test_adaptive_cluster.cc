/**
 * @file
 * Tests for the adaptive shelf enable/disable controller (paper
 * section V-C) and the clustered-backend forwarding delay (section
 * VI).
 */

#include <gtest/gtest.h>

#include "core/steer/adaptive.hh"
#include "sim/system.hh"

using namespace shelf;

namespace
{

class AlwaysYes : public SteeringPolicy
{
  public:
    bool
    steerToShelf(const DynInst &inst, Cycle now) override
    {
        return true;
    }
};

DynInst
someInst()
{
    DynInst d;
    d.tid = 0;
    d.si.op = OpClass::IntAlu;
    return d;
}

} // namespace

TEST(AdaptiveSteering, ProbesThenLocksIntoBetterMode)
{
    uint64_t retired = 0;
    AdaptiveSteering ad(std::make_unique<AlwaysYes>(), &retired,
                        /*epoch=*/10, /*lock=*/4);
    DynInst inst = someInst();

    // Epoch 1 (probe on): shelf decisions pass through.
    EXPECT_TRUE(ad.steerToShelf(inst, 0));
    retired += 5; // 5 insts with the shelf on
    for (int i = 0; i < 10; ++i)
        ad.tick(i);
    // Epoch 2 (probe off): everything forced to the IQ.
    EXPECT_FALSE(ad.steerToShelf(inst, 11));
    EXPECT_FALSE(ad.shelfCurrentlyEnabled());
    retired += 20; // shelf-off epoch performs much better
    for (int i = 0; i < 10; ++i)
        ad.tick(10 + i);
    // Locked: the off mode won.
    EXPECT_FALSE(ad.shelfCurrentlyEnabled());
    EXPECT_FALSE(ad.steerToShelf(inst, 21));
    EXPECT_GT(ad.lockedOffEpochs(), 0u);
}

TEST(AdaptiveSteering, ShelfWinsStaysEnabled)
{
    uint64_t retired = 0;
    AdaptiveSteering ad(std::make_unique<AlwaysYes>(), &retired, 10,
                        4);
    retired += 30; // strong shelf-on epoch
    for (int i = 0; i < 10; ++i)
        ad.tick(i);
    retired += 5; // weak shelf-off epoch
    for (int i = 0; i < 10; ++i)
        ad.tick(10 + i);
    EXPECT_TRUE(ad.shelfCurrentlyEnabled());
    EXPECT_GT(ad.lockedOnEpochs(), 0u);
}

TEST(AdaptiveSteering, ReprobesAfterLock)
{
    uint64_t retired = 0;
    AdaptiveSteering ad(std::make_unique<AlwaysYes>(), &retired, 4,
                        2);
    // probe-on, probe-off, two locked epochs, then probe-on again.
    for (int i = 0; i < 4 * 4; ++i)
        ad.tick(i);
    DynInst inst = someInst();
    EXPECT_TRUE(ad.shelfCurrentlyEnabled()); // back to probing on
    EXPECT_TRUE(ad.steerToShelf(inst, 99));
}

TEST(AdaptiveSteering, CounterResetTolerated)
{
    uint64_t retired = 1000;
    AdaptiveSteering ad(std::make_unique<AlwaysYes>(), &retired, 4,
                        2);
    for (int i = 0; i < 4; ++i)
        ad.tick(i);
    retired = 0; // simulated statistics reset
    for (int i = 0; i < 12; ++i)
        ad.tick(4 + i); // must not wrap/crash
    SUCCEED();
}

TEST(AdaptiveSteering, EndToEndKeepsShelfOnGoodWorkloads)
{
    SystemConfig cfg;
    cfg.core = shelfCore(4, true);
    cfg.core.adaptiveShelf = true;
    cfg.core.adaptiveEpochCycles = 512;
    cfg.benchmarks = { "gcc", "mcf", "hmmer", "milc" };
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 6000;
    SystemResult res = System(cfg).run();
    // The controller must not destroy throughput on a mix where the
    // shelf helps, and probe-off epochs cap the steering fraction.
    EXPECT_GT(res.totalIpc, 0.3);
    EXPECT_GT(res.shelfSteerFrac, 0.05);
}

TEST(ClusterDelay, ZeroMatchesUnclusteredExactly)
{
    SystemConfig cfg;
    cfg.core = shelfCore(4, true);
    cfg.benchmarks = { "gcc", "mcf", "hmmer", "milc" };
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 4000;
    SystemResult a = System(cfg).run();
    cfg.core.interClusterDelay = 0;
    SystemResult b = System(cfg).run();
    EXPECT_EQ(a.totalIpc, b.totalIpc);
}

TEST(ClusterDelay, ForwardingPenaltyCostsThroughput)
{
    SystemConfig cfg;
    cfg.core = shelfCore(4, true);
    cfg.benchmarks = { "gcc", "mcf", "hmmer", "milc" };
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 6000;
    SystemResult fast = System(cfg).run();
    cfg.core.interClusterDelay = 6;
    SystemResult slow = System(cfg).run();
    EXPECT_LT(slow.totalIpc, fast.totalIpc * 1.005);
    // Still correct and live.
    for (const auto &t : slow.threads)
        EXPECT_GT(t.instructions, 50u);
}
