/**
 * @file
 * Parent Loads Table unit tests: the 4-column tracked-load budget,
 * dependence propagation through destination rows, column release on
 * completion, and squash recovery (paper Figure 9 / Table I's 4
 * tracked loads per thread).
 */

#include <gtest/gtest.h>

#include "core/steer/plt.hh"

using namespace shelf;

namespace
{

TEST(Plt, FourColumnsThenExhausted)
{
    ParentLoadsTable plt(1, 4);
    EXPECT_EQ(plt.assignColumn(0, 10), 0);
    EXPECT_EQ(plt.assignColumn(0, 11), 1);
    EXPECT_EQ(plt.assignColumn(0, 12), 2);
    EXPECT_EQ(plt.assignColumn(0, 13), 3);
    // Fifth concurrent load: no column, goes untracked.
    EXPECT_EQ(plt.assignColumn(0, 14), -1);
    EXPECT_TRUE(plt.tracked(0, 10));
    EXPECT_TRUE(plt.tracked(0, 13));
    EXPECT_FALSE(plt.tracked(0, 14));
}

TEST(Plt, ReleaseFreesTheColumnForReuse)
{
    ParentLoadsTable plt(1, 4);
    for (SeqNum s = 10; s < 14; ++s)
        plt.assignColumn(0, s);
    plt.release(0, 11);
    EXPECT_FALSE(plt.tracked(0, 11));
    // The freed column (1) is handed to the next load.
    EXPECT_EQ(plt.assignColumn(0, 20), 1);
}

TEST(Plt, RowsPropagateParentDependences)
{
    ParentLoadsTable plt(1, 4);
    int c0 = plt.assignColumn(0, 10);
    int c1 = plt.assignColumn(0, 11);
    ASSERT_EQ(c0, 0);
    ASSERT_EQ(c1, 1);

    // Load 10's destination r5 depends on column 0; load 11's
    // destination r6 on column 1.
    plt.setRow(0, 5, 1u << c0);
    plt.setRow(0, 6, 1u << c1);
    // r7 = f(r5, r6): the row is the OR of the operand rows.
    plt.setRow(0, 7, plt.row(0, 5) | plt.row(0, 6));
    EXPECT_EQ(plt.row(0, 7), 0b11u);

    // Load 10 completes: its column's bit disappears from every row
    // transitively, leaving only the live parent.
    plt.release(0, 10);
    EXPECT_EQ(plt.row(0, 5), 0u);
    EXPECT_EQ(plt.row(0, 7), 0b10u);
}

TEST(Plt, SquashFreesOnlyYoungerLoads)
{
    ParentLoadsTable plt(1, 4);
    plt.assignColumn(0, 10);
    plt.assignColumn(0, 20);
    plt.assignColumn(0, 30);
    plt.setRow(0, 3, 0b111);

    plt.squash(0, 20); // squash everything younger than gseq 20
    EXPECT_TRUE(plt.tracked(0, 10));
    EXPECT_TRUE(plt.tracked(0, 20));
    EXPECT_FALSE(plt.tracked(0, 30));
    // Only the squashed load's column bit is cleared from rows.
    EXPECT_EQ(plt.row(0, 3), 0b011u);
}

TEST(Plt, ThreadsAreIndependent)
{
    ParentLoadsTable plt(2, 4);
    EXPECT_EQ(plt.assignColumn(0, 10), 0);
    EXPECT_EQ(plt.assignColumn(1, 10), 0);
    plt.setRow(0, 2, 0b1);
    EXPECT_EQ(plt.row(1, 2), 0u);
    plt.release(0, 10);
    EXPECT_FALSE(plt.tracked(0, 10));
    EXPECT_TRUE(plt.tracked(1, 10));
}

TEST(Plt, ResetClearsColumnsAndRows)
{
    ParentLoadsTable plt(1, 4);
    plt.assignColumn(0, 10);
    plt.setRow(0, 4, 0b1);
    plt.reset();
    EXPECT_FALSE(plt.tracked(0, 10));
    EXPECT_EQ(plt.row(0, 4), 0u);
    EXPECT_EQ(plt.assignColumn(0, 11), 0);
}

} // namespace
