/**
 * @file
 * Unit tests for the calendar (ring-of-buckets) event queue that
 * replaced the std::map on the core's tick hot path: cycle ordering,
 * same-cycle FIFO order, ring wraparound over many laps, the
 * beyond-horizon overflow path, and the drain contract.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/event_queue.hh"

using namespace shelf;

namespace
{

std::vector<int>
drainAt(CalendarQueue<int> &q, Cycle now)
{
    std::vector<int> out;
    q.drain(now, out);
    return out;
}

} // namespace

TEST(CalendarQueue, HorizonRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(CalendarQueue<int>(100).horizon(), 128u);
    EXPECT_EQ(CalendarQueue<int>(3).horizon(), 4u);
    EXPECT_EQ(CalendarQueue<int>(4).horizon(), 8u);
}

TEST(CalendarQueue, DeliversEachEventAtItsCycle)
{
    CalendarQueue<int> q(16);
    q.schedule(5, 50);
    q.schedule(3, 30);
    q.schedule(9, 90);
    EXPECT_EQ(q.size(), 3u);
    for (Cycle c = 1; c <= 10; ++c) {
        auto out = drainAt(q, c);
        if (c == 3)
            EXPECT_EQ(out, std::vector<int>{ 30 });
        else if (c == 5)
            EXPECT_EQ(out, std::vector<int>{ 50 });
        else if (c == 9)
            EXPECT_EQ(out, std::vector<int>{ 90 });
        else
            EXPECT_TRUE(out.empty()) << "cycle " << c;
    }
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.drainedThrough(), 10u);
}

TEST(CalendarQueue, SameCycleKeepsInsertionOrder)
{
    CalendarQueue<int> q(16);
    q.schedule(4, 1);
    q.schedule(7, 99);
    q.schedule(4, 2);
    q.schedule(4, 3);
    for (Cycle c = 1; c <= 3; ++c)
        EXPECT_TRUE(drainAt(q, c).empty());
    EXPECT_EQ(drainAt(q, 4), (std::vector<int>{ 1, 2, 3 }));
}

TEST(CalendarQueue, WraparoundOverManyLaps)
{
    // A tiny ring forced around many times: at each cycle schedule a
    // payload due a near-full-horizon ahead and check every arrival.
    CalendarQueue<int> q(4); // 8 buckets
    const Cycle last = 1000;
    const Cycle lead = 7;
    for (Cycle now = 1; now <= last; ++now) {
        auto out = drainAt(q, now);
        if (now <= lead) {
            EXPECT_TRUE(out.empty()) << "cycle " << now;
        } else {
            ASSERT_EQ(out.size(), 1u) << "cycle " << now;
            // Scheduled at (now - lead) for (now - lead) + lead.
            EXPECT_EQ(out[0], static_cast<int>(now - lead));
        }
        if (now + lead <= last)
            q.schedule(now + lead, static_cast<int>(now));
    }
    EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, BeyondHorizonOverflows)
{
    CalendarQueue<int> q(4); // 8 buckets: cycle 1000 must overflow
    q.schedule(1000, 42);
    q.schedule(3, 7);
    q.schedule(1000, 43); // same overflow cycle, FIFO there too
    EXPECT_EQ(q.size(), 3u);
    for (Cycle c = 1; c <= 1001; ++c) {
        auto out = drainAt(q, c);
        if (c == 3)
            EXPECT_EQ(out, std::vector<int>{ 7 });
        else if (c == 1000)
            EXPECT_EQ(out, (std::vector<int>{ 42, 43 }));
        else
            EXPECT_TRUE(out.empty()) << "cycle " << c;
    }
    EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, MixedRingAndOverflowSameCycle)
{
    // An overflow event whose cycle later comes within the horizon
    // must still be delivered exactly once, at its cycle, after any
    // ring event for that cycle (ring drains first).
    CalendarQueue<int> q(4);
    q.schedule(100, 5); // overflow at schedule time
    for (Cycle c = 1; c <= 99; ++c)
        EXPECT_TRUE(drainAt(q, c).empty());
    EXPECT_EQ(drainAt(q, 100), std::vector<int>{ 5 });
}

TEST(CalendarQueue, SchedulePastAndBadDrainDie)
{
    CalendarQueue<int> q(16);
    std::vector<int> out;
    q.drain(1, out);
    EXPECT_DEATH(q.schedule(1, 0), "past");
    EXPECT_DEATH(q.drain(3, out), "order"); // skips cycle 2
}
