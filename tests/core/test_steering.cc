/**
 * @file
 * Unit tests for steering: RCT countdowns, PLT dependence tracking
 * and freeze recovery, practical-steering decisions, and the oracle.
 */

#include <gtest/gtest.h>

#include "core/rename.hh"
#include "core/scoreboard.hh"
#include "core/steer/oracle.hh"
#include "core/steer/plt.hh"
#include "core/steer/practical.hh"
#include "core/steer/rct.hh"
#include "mem/hierarchy.hh"

using namespace shelf;

namespace
{

struct SteerFixture : public ::testing::Test
{
    SteerFixture()
        : rename(4, 4 * kNumArchRegs + 64, 128), sb(512)
    {
        params = shelfCore(4, false, SteerPolicyKind::Practical);
        ctx.mem = &mem;
        ctx.sb = &sb;
        ctx.rename = &rename;
        ctx.dcacheHitLatency = 2;
        ctx.branchResolveExtra = 2;
        ctx.loadResolveDelay = 3;
    }

    DynInst
    inst(OpClass op, RegId dst, RegId s1 = kNoReg, RegId s2 = kNoReg,
         SeqNum gseq = 1)
    {
        DynInst d;
        d.tid = 0;
        d.gseq = gseq;
        d.si.op = op;
        d.si.dst = dst;
        d.si.src1 = s1;
        d.si.src2 = s2;
        return d;
    }

    CoreParams params;
    MemHierarchy mem;
    RenameUnit rename;
    Scoreboard sb;
    SteerContext ctx;
};

} // namespace

TEST(RCT, SetGetSaturates)
{
    ReadyCycleTable rct(1, 5);
    EXPECT_EQ(rct.maxValue(), 31u);
    rct.set(0, 3, 100);
    EXPECT_EQ(rct.get(0, 3), 31u);
    rct.set(0, 3, 7);
    EXPECT_EQ(rct.get(0, 3), 7u);
}

TEST(RCT, TickDecrementsUnlessFrozen)
{
    ReadyCycleTable rct(1, 5);
    rct.set(0, 1, 5);
    rct.set(0, 2, 5);
    std::vector<bool> freeze(kNumArchRegs, false);
    freeze[2] = true;
    rct.tick(0, freeze);
    EXPECT_EQ(rct.get(0, 1), 4u);
    EXPECT_EQ(rct.get(0, 2), 5u);
    rct.tickAll(0);
    EXPECT_EQ(rct.get(0, 2), 4u);
}

TEST(PLT, ColumnAssignmentBounded)
{
    ParentLoadsTable plt(1, 2);
    EXPECT_EQ(plt.assignColumn(0, 100), 0);
    EXPECT_EQ(plt.assignColumn(0, 101), 1);
    EXPECT_EQ(plt.assignColumn(0, 102), -1); // all columns busy
    EXPECT_TRUE(plt.tracked(0, 100));
    EXPECT_FALSE(plt.tracked(0, 102));
}

TEST(PLT, ReleaseClearsColumnEverywhere)
{
    ParentLoadsTable plt(1, 2);
    int col = plt.assignColumn(0, 100);
    plt.setRow(0, 5, 1u << col);
    plt.setRow(0, 6, 1u << col);
    plt.release(0, 100);
    EXPECT_EQ(plt.row(0, 5), 0u);
    EXPECT_EQ(plt.row(0, 6), 0u);
    EXPECT_EQ(plt.assignColumn(0, 200), col); // column reusable
}

TEST(PLT, SquashFreesYoungTrackedLoads)
{
    ParentLoadsTable plt(1, 4);
    plt.assignColumn(0, 10);
    plt.assignColumn(0, 20);
    plt.squash(0, 15);
    EXPECT_TRUE(plt.tracked(0, 10));
    EXPECT_FALSE(plt.tracked(0, 20));
}

TEST_F(SteerFixture, FirstInstructionGoesToShelf)
{
    // Empty schedule: shelf completes at the same predicted cycle as
    // the IQ; ties break toward the shelf (paper section IV-B).
    PracticalSteering ps(params, ctx);
    DynInst alu = inst(OpClass::IntAlu, 1);
    EXPECT_TRUE(ps.steerToShelf(alu, 0));
}

TEST_F(SteerFixture, ChainAfterLoadMissPrefersIq)
{
    PracticalSteering ps(params, ctx);
    // A long-latency producer makes the consumer late; meanwhile a
    // branch pushes the earliest shelf writeback out, so a ready
    // instruction should go to the IQ.
    DynInst div = inst(OpClass::IntDiv, 1, 2, 3);
    ps.steerToShelf(div, 0); // rct[r1] = 12
    DynInst dependent = inst(OpClass::IntAlu, 4, 1);
    DynInst independent = inst(OpClass::IntAlu, 5, 14);
    // The dependent instruction is late either way -> shelf-friendly.
    EXPECT_TRUE(ps.steerToShelf(dependent, 0));
    // The independent one would issue now from the IQ but must wait
    // behind the divide on the shelf -> IQ.
    EXPECT_FALSE(ps.steerToShelf(independent, 0));
}

TEST_F(SteerFixture, CountersDecayTowardShelf)
{
    PracticalSteering ps(params, ctx);
    DynInst div = inst(OpClass::IntDiv, 1, 2, 3);
    ps.steerToShelf(div, 0);
    // A dependent instruction pushes the earliest shelf issue cycle
    // out to the divide's completion.
    DynInst dep = inst(OpClass::IntAlu, 4, 1);
    ps.steerToShelf(dep, 0);
    DynInst indep = inst(OpClass::IntAlu, 5, 14);
    EXPECT_FALSE(ps.steerToShelf(indep, 0));
    // After enough cycles the predicted shelf issue window clears.
    for (int i = 0; i < 40; ++i)
        ps.tick(i);
    DynInst indep2 = inst(OpClass::IntAlu, 6, 14);
    EXPECT_TRUE(ps.steerToShelf(indep2, 40));
}

TEST_F(SteerFixture, StatsTrackDecisions)
{
    PracticalSteering ps(params, ctx);
    DynInst a = inst(OpClass::IntAlu, 1);
    ps.steerToShelf(a, 0);
    EXPECT_EQ(ps.steeredToShelf.value() + ps.steeredToIq.value(),
              1.0);
    EXPECT_GE(ps.shelfFraction(), 0.0);
    EXPECT_LE(ps.shelfFraction(), 1.0);
}

TEST_F(SteerFixture, FreezeOnLoadOutrunningPrediction)
{
    PracticalSteering ps(params, ctx);
    // Steer a load; it is predicted to hit (ready in ~3 cycles).
    DynInst ld = inst(OpClass::MemRead, 1, 14);
    ld.gseq = 50;
    ps.steerToShelf(ld, 0);
    // Mark the register's actual producer as NOT ready: rename maps
    // r1 to tag 1 initially; make it pending.
    sb.markPending(rename.lookupTag(0, 1));
    unsigned before = ps.rctTable().get(0, 1);
    ASSERT_GT(before, 0u);
    // Tick past the predicted latency: the counter reaches zero,
    // then freezes everything dependent on the load.
    for (int i = 0; i < 10; ++i)
        ps.tick(i);
    EXPECT_EQ(ps.rctTable().get(0, 1), 0u);
    EXPECT_GT(ps.rctFreezes.value(), 0.0);
    // The load completes: its column is released.
    ps.loadCompleted(ld);
    EXPECT_FALSE(ps.pltTable().tracked(0, 50));
}

TEST_F(SteerFixture, OracleUsesCacheProbe)
{
    OracleSteering os(params, ctx);
    // A load to a cold address is known to be a long miss: once an
    // elder branch sets the shelf writeback horizon, the oracle can
    // still prefer the shelf for the load (it is late anyway), but
    // prefers the IQ for a short ALU op that would be delayed.
    DynInst br = inst(OpClass::Branch, kNoReg, 14);
    os.steerToShelf(br, 0);
    DynInst alu = inst(OpClass::IntAlu, 2, 14);
    EXPECT_FALSE(os.steerToShelf(alu, 0));
}

TEST_F(SteerFixture, OracleWarmVsColdLoadLatency)
{
    OracleSteering os(params, ctx);
    mem.warmData(0x1000);
    DynInst warm_ld = inst(OpClass::MemRead, 1, 14);
    warm_ld.si.addr = 0x1000;
    warm_ld.si.size = 8;
    DynInst cold_ld = inst(OpClass::MemRead, 2, 14);
    cold_ld.si.addr = 0x2000000;
    cold_ld.si.size = 8;
    // Both steer somewhere; afterwards the predicted readiness of
    // the cold load's destination must be far beyond the warm one's,
    // visible through subsequent decisions: a consumer of the cold
    // load tolerates the shelf, a consumer of the warm one depends
    // on the shelf horizon.
    os.steerToShelf(warm_ld, 0);
    os.steerToShelf(cold_ld, 0);
    // The cold load is in flight (its destination tag pending), so
    // the oracle falls back to its own long-latency prediction.
    sb.markPending(rename.lookupTag(0, 2));
    DynInst use_cold = inst(OpClass::IntAlu, 3, 2);
    EXPECT_TRUE(os.steerToShelf(use_cold, 0));
}

TEST(SteeringFactory, BuildsEveryPolicy)
{
    MemHierarchy mem;
    RenameUnit rename(4, 4 * kNumArchRegs + 64, 128);
    Scoreboard sb(512);
    SteerContext ctx;
    ctx.mem = &mem;
    ctx.sb = &sb;
    ctx.rename = &rename;
    for (auto kind : { SteerPolicyKind::AlwaysIQ,
                       SteerPolicyKind::AlwaysShelf,
                       SteerPolicyKind::Practical,
                       SteerPolicyKind::Oracle }) {
        CoreParams p = shelfCore(4, false, kind);
        auto policy = makeSteeringPolicy(p, ctx);
        ASSERT_NE(policy, nullptr);
        DynInst d;
        d.tid = 0;
        d.si.op = OpClass::IntAlu;
        bool to_shelf = policy->steerToShelf(d, 0);
        if (kind == SteerPolicyKind::AlwaysIQ) {
            EXPECT_FALSE(to_shelf);
        }
        if (kind == SteerPolicyKind::AlwaysShelf) {
            EXPECT_TRUE(to_shelf);
        }
    }
}
