/**
 * @file
 * Tests for core parameter validation, derived sizing rules, and the
 * preset configurations (Table I).
 */

#include <gtest/gtest.h>

#include "core/params.hh"

using namespace shelf;

TEST(Params, Base64Preset)
{
    CoreParams p = baseCore64(4);
    p.validate();
    EXPECT_EQ(p.robEntries, 64u);
    EXPECT_EQ(p.iqEntries, 32u);
    EXPECT_EQ(p.robPerThread(), 16u);
    EXPECT_EQ(p.lqPerThread(), 8u);
    EXPECT_FALSE(p.hasShelf());
    EXPECT_EQ(p.numExtTags(), 0u);
}

TEST(Params, Base128DoublesWindow)
{
    CoreParams p = baseCore128(4);
    p.validate();
    EXPECT_EQ(p.robEntries, 128u);
    EXPECT_EQ(p.iqEntries, 64u);
    EXPECT_GT(p.numPhysRegs(), baseCore64(4).numPhysRegs());
}

TEST(Params, ShelfPreset)
{
    CoreParams p = shelfCore(4, true);
    p.validate();
    EXPECT_TRUE(p.hasShelf());
    EXPECT_TRUE(p.optimisticShelf);
    EXPECT_EQ(p.shelfPerThread(), 16u);
    EXPECT_EQ(p.steering, SteerPolicyKind::Practical);
}

TEST(Params, ExtTagSpaceCoversWorstCase)
{
    // Undersizing the extension tag space deadlocks (every thread's
    // RAT can hold one ext tag per architectural register while
    // in-flight instructions hold unretired previous mappings).
    CoreParams p = shelfCore(4, false);
    EXPECT_GE(p.numExtTags(),
              p.threads * kNumArchRegs + p.shelfEntries);
    EXPECT_EQ(p.numTags(), p.numPhysRegs() + p.numExtTags());
}

TEST(Params, AutoPhysRegsBackAllThreads)
{
    for (unsigned threads : { 1u, 2u, 4u, 8u }) {
        CoreParams p = baseCore64(threads);
        EXPECT_GE(p.numPhysRegs(),
                  threads * kNumArchRegs + p.robEntries);
    }
}

TEST(Params, FetchBufferAutoCoversPipeDepth)
{
    CoreParams p1 = baseCore64(1);
    // A single thread must be able to cover fetchWidth x pipe depth.
    EXPECT_GE(p1.fetchBufferCapacity(),
              p1.dispatchWidth * p1.fetchToDispatch);
    CoreParams p4 = baseCore64(4);
    EXPECT_GE(p4.fetchBufferCapacity(), 16u);
    p4.fetchBufferPerThread = 24;
    EXPECT_EQ(p4.fetchBufferCapacity(), 24u);
}

TEST(Params, InvalidConfigsDie)
{
    CoreParams p = baseCore64(4);
    p.threads = 0;
    EXPECT_DEATH(p.validate(), "thread count");

    p = baseCore64(4);
    p.robEntries = 66; // not divisible by 4 threads
    EXPECT_DEATH(p.validate(), "divisible");

    p = baseCore64(4);
    p.steering = SteerPolicyKind::Practical; // no shelf
    EXPECT_DEATH(p.validate(), "requires a shelf");
}

TEST(Params, NonDivisiblePartitionsDieWithNumbers)
{
    // The per-thread partition accessors (robPerThread() and kin)
    // would silently truncate on a non-divisible split; validate
    // must reject those shapes and name the offending numbers.
    CoreParams p = baseCore64(8);
    p.robEntries = 68; // 68 / 8 truncates
    EXPECT_DEATH(p.validate(), "ROB \\(68\\) not divisible by 8");

    p = baseCore64(8);
    p.lqEntries = 34;
    EXPECT_DEATH(p.validate(), "LQ \\(34\\) not divisible by 8");

    p = baseCore64(8);
    p.sqEntries = 22;
    EXPECT_DEATH(p.validate(), "SQ \\(22\\) not divisible by 8");

    p = shelfCore(8, true);
    p.shelfEntries = 66;
    EXPECT_DEATH(p.validate(), "shelf \\(66\\) not divisible by 8");
}

TEST(Params, EightThreadStandardConfigsValidate)
{
    for (CoreParams p : { baseCore64(8), baseCore128(8),
                          shelfCore(8, false), shelfCore(8, true) }) {
        EXPECT_EQ(p.validateError(), "") << p.name;
        EXPECT_EQ(p.robPerThread() * 8, p.robEntries) << p.name;
        EXPECT_EQ(p.lqPerThread() * 8, p.lqEntries) << p.name;
        EXPECT_EQ(p.sqPerThread() * 8, p.sqEntries) << p.name;
    }
}

TEST(Params, DegenerateConfigsDie)
{
    CoreParams p = baseCore64(4);
    p.issueWidth = 0;
    EXPECT_DEATH(p.validate(), "zero pipeline width");

    p = baseCore64(4);
    p.fetchWidth = 0;
    EXPECT_DEATH(p.validate(), "zero pipeline width");

    p = baseCore64(8);
    p.lqEntries = 0; // below one entry per thread
    EXPECT_DEATH(p.validate(), "one entry per thread");

    // Explicitly undersized extension tag space: a deadlock, not a
    // stall (dispatch blocks everywhere, nothing ever frees a tag).
    p = shelfCore(4, true);
    p.extTags = 8;
    EXPECT_DEATH(p.validate(), "deadlock-free floor");

    p = shelfCore(4, true, SteerPolicyKind::Practical);
    p.rctBits = 0;
    EXPECT_DEATH(p.validate(), "RCT counter width");
    p = shelfCore(4, true, SteerPolicyKind::Practical);
    p.rctBits = 9;
    EXPECT_DEATH(p.validate(), "RCT counter width");
    p = shelfCore(4, true, SteerPolicyKind::Practical);
    p.pltColumns = 0;
    EXPECT_DEATH(p.validate(), "PLT column count");

    p = shelfCore(4, true);
    p.adaptiveShelf = true;
    p.adaptiveEpochCycles = 0;
    EXPECT_DEATH(p.validate(), "zero-cycle probe epoch");
}

TEST(Params, SteerPolicyNames)
{
    EXPECT_STREQ(steerPolicyName(SteerPolicyKind::AlwaysIQ),
                 "always-iq");
    EXPECT_STREQ(steerPolicyName(SteerPolicyKind::AlwaysShelf),
                 "always-shelf");
    EXPECT_STREQ(steerPolicyName(SteerPolicyKind::Practical),
                 "practical");
    EXPECT_STREQ(steerPolicyName(SteerPolicyKind::Oracle), "oracle");
}
