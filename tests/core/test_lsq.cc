/**
 * @file
 * Unit tests for the LQ/SQ: store-to-load forwarding, memory-order
 * violation detection, shelf-store coalescing, and squash rollback
 * (paper section III-D).
 */

#include <gtest/gtest.h>

#include "core/lsq.hh"

using namespace shelf;

namespace
{

DynInstPtr
memInst(SeqNum seq, bool is_store, Addr addr, uint8_t size = 8)
{
    auto inst = makeDynInst();
    inst->tid = 0;
    inst->seq = seq;
    inst->gseq = seq;
    inst->si.op = is_store ? OpClass::MemWrite : OpClass::MemRead;
    inst->si.addr = addr;
    inst->si.size = size;
    return inst;
}

} // namespace

TEST(LSQ, ForwardFromYoungestOlderStore)
{
    LSQ lsq(1, 8, 8);
    auto st1 = memInst(1, true, 0x100);
    auto st2 = memInst(2, true, 0x100);
    auto ld = memInst(3, false, 0x100);
    lsq.dispatchStore(0, st1);
    lsq.dispatchStore(0, st2);
    lsq.dispatchLoad(0, ld);
    st1->completed = true;
    st2->completed = true;
    auto r = lsq.loadExecute(0, ld);
    EXPECT_TRUE(r.forwarded);
    EXPECT_EQ(r.fromStore, 2u); // the youngest older store
    EXPECT_EQ(ld->dataFromStore, 2u);
    EXPECT_EQ(lsq.forwards.value(), 1.0);
}

TEST(LSQ, NoForwardFromUnresolvedStore)
{
    LSQ lsq(1, 8, 8);
    auto st = memInst(1, true, 0x100);
    auto ld = memInst(2, false, 0x100);
    lsq.dispatchStore(0, st);
    lsq.dispatchLoad(0, ld);
    // Store address unknown: the load speculates past it.
    auto r = lsq.loadExecute(0, ld);
    EXPECT_FALSE(r.forwarded);
    EXPECT_EQ(ld->dataFromStore, kNoSeq);
}

TEST(LSQ, NoForwardFromYoungerStore)
{
    LSQ lsq(1, 8, 8);
    auto ld = memInst(1, false, 0x100);
    auto st = memInst(2, true, 0x100);
    lsq.dispatchLoad(0, ld);
    lsq.dispatchStore(0, st);
    st->completed = true;
    EXPECT_FALSE(lsq.loadExecute(0, ld).forwarded);
}

TEST(LSQ, PartialOverlapForwards)
{
    LSQ lsq(1, 8, 8);
    auto st = memInst(1, true, 0x100, 8);
    auto ld = memInst(2, false, 0x104, 4);
    lsq.dispatchStore(0, st);
    lsq.dispatchLoad(0, ld);
    st->completed = true;
    EXPECT_TRUE(lsq.loadExecute(0, ld).forwarded);
}

TEST(LSQ, ViolationWhenYoungerLoadIssuedEarly)
{
    LSQ lsq(1, 8, 8);
    auto st = memInst(1, true, 0x200);
    auto ld = memInst(2, false, 0x200);
    lsq.dispatchStore(0, st);
    lsq.dispatchLoad(0, ld);
    // The load issued and took data from the cache...
    ld->issued = true;
    ld->dataFromStore = kNoSeq;
    // ...then the elder store resolves its address: violation.
    st->completed = true;
    EXPECT_EQ(lsq.storeCheckViolation(0, st), ld);
    EXPECT_EQ(lsq.violations.value(), 1.0);
}

TEST(LSQ, NoViolationWhenLoadForwardedFromThisStore)
{
    LSQ lsq(1, 8, 8);
    auto st = memInst(1, true, 0x200);
    auto ld = memInst(2, false, 0x200);
    lsq.dispatchStore(0, st);
    lsq.dispatchLoad(0, ld);
    ld->issued = true;
    ld->dataFromStore = 1; // got its value from this very store
    st->completed = true;
    EXPECT_EQ(lsq.storeCheckViolation(0, st), nullptr);
}

TEST(LSQ, NoViolationDifferentAddress)
{
    LSQ lsq(1, 8, 8);
    auto st = memInst(1, true, 0x200);
    auto ld = memInst(2, false, 0x300);
    lsq.dispatchStore(0, st);
    lsq.dispatchLoad(0, ld);
    ld->issued = true;
    EXPECT_EQ(lsq.storeCheckViolation(0, st), nullptr);
}

TEST(LSQ, ViolationReturnsEldestOffender)
{
    LSQ lsq(1, 8, 8);
    auto st = memInst(1, true, 0x200);
    auto ld1 = memInst(2, false, 0x200);
    auto ld2 = memInst(3, false, 0x200);
    lsq.dispatchStore(0, st);
    lsq.dispatchLoad(0, ld1);
    lsq.dispatchLoad(0, ld2);
    ld1->issued = ld2->issued = true;
    st->completed = true;
    EXPECT_EQ(lsq.storeCheckViolation(0, st), ld1);
}

TEST(LSQ, ShelfLoadScansWithoutEntry)
{
    // A shelf load never occupies the LQ: loadExecute works purely
    // against resident IQ stores.
    LSQ lsq(1, 2, 2);
    auto st = memInst(1, true, 0x400);
    lsq.dispatchStore(0, st);
    st->completed = true;
    auto shelf_ld = memInst(5, false, 0x400);
    shelf_ld->toShelf = true;
    EXPECT_TRUE(lsq.loadExecute(0, shelf_ld).forwarded);
    EXPECT_EQ(lsq.lqSize(0), 0u);
}

TEST(LSQ, ShelfStoreCoalescing)
{
    LSQ lsq(1, 4, 4);
    auto st = memInst(1, true, 0x1000);
    lsq.dispatchStore(0, st);
    st->completed = true;
    auto shelf_st = memInst(2, true, 0x1020); // same 64B block
    shelf_st->toShelf = true;
    EXPECT_TRUE(lsq.shelfStoreCoalesces(0, shelf_st));
    auto far_st = memInst(3, true, 0x2000);
    far_st->toShelf = true;
    EXPECT_FALSE(lsq.shelfStoreCoalesces(0, far_st));
    EXPECT_EQ(lsq.coalesces.value(), 1.0);
}

TEST(LSQ, RetirementInOrder)
{
    LSQ lsq(1, 4, 4);
    auto ld1 = memInst(1, false, 0x10);
    auto ld2 = memInst(2, false, 0x20);
    lsq.dispatchLoad(0, ld1);
    lsq.dispatchLoad(0, ld2);
    EXPECT_DEATH(lsq.retireLoad(0, ld2), "out of order");
    lsq.retireLoad(0, ld1);
    lsq.retireLoad(0, ld2);
    EXPECT_EQ(lsq.lqSize(0), 0u);
}

TEST(LSQ, SquashRollsBackBothQueues)
{
    LSQ lsq(1, 4, 4);
    lsq.dispatchLoad(0, memInst(1, false, 0x10));
    lsq.dispatchStore(0, memInst(2, true, 0x20));
    lsq.dispatchLoad(0, memInst(3, false, 0x30));
    lsq.dispatchStore(0, memInst(4, true, 0x40));
    lsq.squash(0, 2);
    EXPECT_EQ(lsq.lqSize(0), 1u);
    EXPECT_EQ(lsq.sqSize(0), 1u);
}

TEST(LSQ, CapacityPartitionedPerThread)
{
    LSQ lsq(2, 1, 1);
    lsq.dispatchLoad(0, memInst(1, false, 0x10));
    EXPECT_TRUE(lsq.lqFull(0));
    EXPECT_FALSE(lsq.lqFull(1));
    EXPECT_DEATH(lsq.dispatchLoad(0, memInst(2, false, 0x20)),
                 "capacity");
}
