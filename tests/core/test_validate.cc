/**
 * @file
 * Tests for the validation subsystem itself (src/validate): the
 * golden functional model must agree with every core configuration
 * the differential suite covers, each named invariant check must
 * fire on deliberately broken state (via InvariantChecker::corrupt),
 * the golden commit-stream checker must reject tampered logs, and
 * the CoreParams JSON round trip must be lossless.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/core.hh"
#include "mem/hierarchy.hh"
#include "validate/config_json.hh"
#include "validate/golden.hh"
#include "validate/invariants.hh"
#include "workload/generator.hh"
#include "workload/spec2006.hh"

using namespace shelf;
using namespace shelf::validate;

namespace
{

constexpr Cycle kRunCycles = 5000;
constexpr size_t kTraceLen = 40000;

std::vector<Trace>
makeTraces(unsigned threads, uint64_t seed, MemHierarchy &mem)
{
    const char *names[4] = { "gcc", "mcf", "hmmer", "gobmk" };
    std::vector<Trace> traces;
    for (unsigned t = 0; t < threads; ++t) {
        TraceGenerator gen(spec2006Profile(names[t % 4]), seed + t,
                           static_cast<Addr>(t) << 30);
        traces.push_back(gen.generate(kTraceLen));
        for (const auto &inst : traces.back()) {
            mem.warmInst(inst.pc);
            if (inst.isMem())
                mem.warmData(inst.addr);
        }
    }
    return traces;
}

std::vector<const Trace *>
tracePtrs(const std::vector<Trace> &traces)
{
    std::vector<const Trace *> ptrs;
    for (const auto &tr : traces)
        ptrs.push_back(&tr);
    return ptrs;
}

struct GoldenParam
{
    std::string label;
    CoreParams params;
};

std::vector<GoldenParam>
allConfigs()
{
    std::vector<GoldenParam> v;
    v.push_back({ "baseline", baseCore64(4) });
    v.push_back({ "base128", baseCore128(4) });
    v.push_back({ "shelf_cons", shelfCore(4, false) });
    v.push_back({ "shelf_opt", shelfCore(4, true) });
    v.push_back({ "shelf_oracle",
                  shelfCore(4, true, SteerPolicyKind::Oracle) });
    v.push_back({ "always_shelf",
                  shelfCore(4, true, SteerPolicyKind::AlwaysShelf) });

    CoreParams single_ssr = shelfCore(4, true);
    single_ssr.ssrDesign = SsrDesign::Single;
    v.push_back({ "ssr_single", single_ssr });

    CoreParams per_run = shelfCore(4, true);
    per_run.ssrDesign = SsrDesign::PerRun;
    v.push_back({ "ssr_per_run", per_run });

    CoreParams release_wb = shelfCore(4, true);
    release_wb.shelfReleaseAtWriteback = true;
    v.push_back({ "release_at_writeback", release_wb });

    CoreParams rr = shelfCore(4, true);
    rr.fetchPolicy = CoreParams::FetchPolicy::RoundRobin;
    v.push_back({ "round_robin_fetch", rr });

    CoreParams tso = shelfCore(4, true);
    tso.memModel = CoreParams::MemModel::TSO;
    v.push_back({ "tso", tso });

    return v;
}

class GoldenAgreement
    : public ::testing::TestWithParam<GoldenParam>
{};

/**
 * The centerpiece: every configuration's observed commit stream must
 * satisfy the golden in-order execution's predictions (uniqueness,
 * bounded-gap contiguity, destination identity, WAW ordering), with
 * the per-cycle invariant checks enabled throughout.
 */
TEST_P(GoldenAgreement, CommitStreamMatchesGoldenModel)
{
    const GoldenParam &gp = GetParam();
    MemHierarchy mem;
    auto traces = makeTraces(gp.params.threads, 1, mem);
    Core core(gp.params, mem, tracePtrs(traces));
    core.setCheckInvariants(true);

    CommitLog log(gp.params.threads);
    core.setCommitObserver(log.observer());
    core.run(kRunCycles);

    uint64_t window = goldenTailWindow(gp.params);
    for (unsigned t = 0; t < gp.params.threads; ++t) {
        GoldenReport rep = checkCommitsAgainstGolden(
            traces[t], log.thread(static_cast<ThreadID>(t)), window);
        EXPECT_TRUE(rep.ok)
            << gp.label << " t" << t << ": " << rep.detail;
        EXPECT_GT(rep.commitsChecked, 0u) << gp.label << " t" << t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GoldenAgreement, ::testing::ValuesIn(allConfigs()),
    [](const ::testing::TestParamInfo<GoldenParam> &info) {
        return info.param.label;
    });

/**
 * Negative tests: for every named check, corrupt live core state via
 * the checker's own fault injector and verify the check fires. The
 * shelf + TSO configuration keeps every mechanism live so each check
 * eventually finds a corruption site.
 */
class InvariantNegative
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(InvariantNegative, CorruptedStateIsDetected)
{
    const std::string &check = GetParam();
    CoreParams params =
        shelfCore(4, true, SteerPolicyKind::Practical);
    params.memModel = CoreParams::MemModel::TSO;
    MemHierarchy mem;
    auto traces = makeTraces(params.threads, 7, mem);
    Core core(params, mem, tracePtrs(traces));

    // A healthy pipeline passes the check before corruption.
    for (Cycle c = 0; c < 200; ++c)
        core.tick();
    EXPECT_TRUE(InvariantChecker::run(core, check).empty())
        << check << " failed on healthy state";

    bool corrupted = false;
    for (Cycle c = 0; c < 5000 && !corrupted; ++c) {
        core.tick();
        corrupted = InvariantChecker::corrupt(core, check);
    }
    ASSERT_TRUE(corrupted)
        << "no corruption site for '" << check << "' in 5000 cycles";

    auto failures = InvariantChecker::run(core, check);
    ASSERT_FALSE(failures.empty())
        << check << " did not fire on corrupted state";
    EXPECT_EQ(failures.front().check, check);
    EXPECT_FALSE(failures.front().detail.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Checks, InvariantNegative,
    ::testing::ValuesIn(InvariantChecker::checkNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        std::replace(name.begin(), name.end(), '-', '_');
        return name;
    });

TEST(Invariants, RunAllIsCleanOnHealthyCore)
{
    CoreParams params = shelfCore(4, true);
    MemHierarchy mem;
    auto traces = makeTraces(params.threads, 3, mem);
    Core core(params, mem, tracePtrs(traces));
    for (Cycle c = 0; c < 1000; ++c) {
        core.tick();
        auto failures = InvariantChecker::runAll(core);
        ASSERT_TRUE(failures.empty())
            << "cycle " << core.cycle() << ": "
            << failures.front().check << ": "
            << failures.front().detail;
    }
}

/** @name Golden-checker unit tests over synthetic commit logs @{ */

Trace
tinyTrace()
{
    // r1 = alu; r2 = alu(r1); r1 = alu(r2); r3 = alu(r1)
    Trace t;
    TraceInst a;
    a.op = OpClass::IntAlu;
    a.pc = 0x1000;
    a.dst = 1;
    t.push_back(a);
    a.pc = 0x1004;
    a.src1 = 1;
    a.dst = 2;
    t.push_back(a);
    a.pc = 0x1008;
    a.src1 = 2;
    a.dst = 1;
    t.push_back(a);
    a.pc = 0x100c;
    a.src1 = 1;
    a.dst = 3;
    t.push_back(a);
    return t;
}

CommitRecord
rec(uint64_t idx, RegId dst, Cycle complete, Cycle retire,
    bool to_shelf = false)
{
    CommitRecord r;
    r.traceIdx = idx;
    r.seq = idx;
    r.dst = dst;
    r.completeCycle = complete;
    r.retireCycle = retire;
    r.toShelf = to_shelf;
    return r;
}

TEST(GoldenChecker, AcceptsAHealthyLog)
{
    Trace t = tinyTrace();
    std::vector<CommitRecord> log = {
        rec(0, 1, 10, 11), rec(1, 2, 12, 13), rec(2, 1, 14, 15),
        rec(3, 3, 16, 17),
    };
    GoldenReport rep = checkCommitsAgainstGolden(t, log, 64);
    EXPECT_TRUE(rep.ok) << rep.detail;
    EXPECT_EQ(rep.commitsChecked, 4u);
}

TEST(GoldenChecker, EmptyLogIsVacuouslyOk)
{
    Trace t = tinyTrace();
    GoldenReport rep = checkCommitsAgainstGolden(t, {}, 64);
    EXPECT_TRUE(rep.ok);
}

TEST(GoldenChecker, RejectsDoubleCommit)
{
    Trace t = tinyTrace();
    std::vector<CommitRecord> log = {
        rec(0, 1, 10, 11), rec(1, 2, 12, 13), rec(1, 2, 12, 14),
    };
    GoldenReport rep = checkCommitsAgainstGolden(t, log, 64);
    EXPECT_FALSE(rep.ok);
    EXPECT_NE(rep.detail.find("twice"), std::string::npos)
        << rep.detail;
}

TEST(GoldenChecker, RejectsGapBeyondTheTailWindow)
{
    Trace t = tinyTrace();
    // Index 1 never committed, and index 3 is more than window=1
    // beyond it: the gap cannot be in-flight skew.
    std::vector<CommitRecord> log = {
        rec(0, 1, 10, 11), rec(2, 1, 14, 15), rec(3, 3, 16, 17),
    };
    GoldenReport rep = checkCommitsAgainstGolden(t, log, 1);
    EXPECT_FALSE(rep.ok);
    EXPECT_NE(rep.detail.find("never committed"), std::string::npos)
        << rep.detail;
}

TEST(GoldenChecker, TolerantOfGapsInsideTheTailWindow)
{
    Trace t = tinyTrace();
    std::vector<CommitRecord> log = {
        rec(0, 1, 10, 11), rec(2, 1, 14, 15), rec(3, 3, 16, 17),
    };
    GoldenReport rep = checkCommitsAgainstGolden(t, log, 64);
    EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST(GoldenChecker, RejectsWrongDestination)
{
    Trace t = tinyTrace();
    std::vector<CommitRecord> log = {
        rec(0, 1, 10, 11), rec(1, 7, 12, 13),
    };
    GoldenReport rep = checkCommitsAgainstGolden(t, log, 64);
    EXPECT_FALSE(rep.ok);
    EXPECT_NE(rep.detail.find("dst"), std::string::npos)
        << rep.detail;
}

TEST(GoldenChecker, RejectsWawInversionOfAShelfWriter)
{
    Trace t = tinyTrace();
    // Index 2 redefines r1 on the shelf but "wrote back" before
    // index 0 (the previous r1 writer) completed: PRI reuse would
    // have clobbered the value consumers of index 0 still read.
    std::vector<CommitRecord> log = {
        rec(0, 1, 10, 11), rec(1, 2, 12, 13),
        rec(2, 1, 8, 14, true), rec(3, 3, 16, 17),
    };
    GoldenReport rep = checkCommitsAgainstGolden(t, log, 64);
    EXPECT_FALSE(rep.ok);
    EXPECT_NE(rep.detail.find("WAW"), std::string::npos)
        << rep.detail;
}

TEST(GoldenChecker, RejectsRetireBeforeComplete)
{
    Trace t = tinyTrace();
    std::vector<CommitRecord> log = { rec(0, 1, 12, 11) };
    GoldenReport rep = checkCommitsAgainstGolden(t, log, 64);
    EXPECT_FALSE(rep.ok);
    EXPECT_NE(rep.detail.find("before completing"),
              std::string::npos)
        << rep.detail;
}

TEST(GoldenChecker, RejectsOutOfOrderRetirementLog)
{
    Trace t = tinyTrace();
    std::vector<CommitRecord> log = {
        rec(1, 2, 12, 13), rec(0, 1, 10, 11),
    };
    GoldenReport rep = checkCommitsAgainstGolden(t, log, 64);
    EXPECT_FALSE(rep.ok);
    EXPECT_NE(rep.detail.find("retirement order"),
              std::string::npos)
        << rep.detail;
}

TEST(GoldenModelTest, TracksPerRegisterWriterChains)
{
    Trace t = tinyTrace();
    GoldenModel g(t);
    auto s0 = g.step();
    EXPECT_EQ(s0.dst, 1);
    EXPECT_EQ(s0.prevWriter, GoldenModel::kNoWriter);
    auto s1 = g.step();
    EXPECT_EQ(s1.dst, 2);
    EXPECT_EQ(s1.prevWriter, GoldenModel::kNoWriter);
    auto s2 = g.step();
    EXPECT_EQ(s2.dst, 1);
    EXPECT_EQ(s2.prevWriter, 0u); // previous r1 writer: index 0
    auto s3 = g.step();
    EXPECT_EQ(s3.dst, 3);
    // The walk wraps like the core's fetch cursor.
    auto s4 = g.step();
    EXPECT_EQ(s4.dynIdx, 4u);
    EXPECT_EQ(s4.dst, 1);
    EXPECT_EQ(s4.prevWriter, 2u);
}

/** @} */

TEST(ConfigJson, RoundTripsEveryField)
{
    CoreParams p = shelfCore(8, true, SteerPolicyKind::Oracle);
    p.ssrDesign = SsrDesign::PerRun;
    p.memModel = CoreParams::MemModel::TSO;
    p.fetchPolicy = CoreParams::FetchPolicy::RoundRobin;
    p.shelfReleaseAtWriteback = true;
    p.adaptiveShelf = true;
    p.adaptiveEpochCycles = 999;
    p.interClusterDelay = 3;
    p.steerSlack = 4;
    p.rctBits = 7;
    p.pltColumns = 8;
    p.physRegs = 777;
    p.extTags = 1234;
    p.name = "round-trip";

    CoreParams q = coreParamsFromJson(coreParamsToJson(p));
    EXPECT_EQ(coreParamsToJson(q), coreParamsToJson(p));
    EXPECT_EQ(q.name, p.name);
    EXPECT_EQ(q.threads, p.threads);
    EXPECT_EQ(q.shelfEntries, p.shelfEntries);
    EXPECT_EQ(q.ssrDesign, p.ssrDesign);
    EXPECT_EQ(q.memModel, p.memModel);
    EXPECT_EQ(q.steering, p.steering);
    EXPECT_EQ(q.extTags, p.extTags);
}

TEST(ConfigJson, MissingFieldsKeepDefaults)
{
    CoreParams d;
    CoreParams p = coreParamsFromJson("{\"threads\": 2}");
    EXPECT_EQ(p.threads, 2u);
    EXPECT_EQ(p.robEntries, d.robEntries);
    EXPECT_EQ(p.ssrDesign, d.ssrDesign);
}

TEST(ConfigJson, UnknownKeyIsFatal)
{
    EXPECT_DEATH(coreParamsFromJson("{\"robEntrys\": 64}"),
                 "unknown key");
}

TEST(ConfigJson, MalformedDocumentIsFatal)
{
    EXPECT_DEATH(coreParamsFromJson("{\"threads\": 2"),
                 "unexpected end");
    EXPECT_DEATH(coreParamsFromJson("\"threads\""), "expected");
}

TEST(SweepJobSpec, RoundTripsCanonically)
{
    SweepJobSpec spec;
    spec.core = shelfCore(4, true);
    spec.mixBenchmarks = { 3, 1, 4, 1 };
    spec.warmupCycles = 123;
    spec.measureCycles = 456;
    spec.seed = 789;

    SweepJobSpec back = SweepJobSpec::fromJson(spec.toJson());
    // toJson is the journal identity key, so the round trip must be
    // byte-exact, not merely field-equal.
    EXPECT_EQ(back.toJson(), spec.toJson());
    EXPECT_EQ(back.mixBenchmarks, spec.mixBenchmarks);
    EXPECT_EQ(back.warmupCycles, 123u);
    EXPECT_EQ(back.measureCycles, 456u);
    EXPECT_EQ(back.seed, 789u);
    EXPECT_EQ(back.fault, "");
    EXPECT_EQ(coreParamsToJson(back.core),
              coreParamsToJson(spec.core));
}

TEST(SweepJobSpec, FaultFieldIsPreservedAndChangesKey)
{
    SweepJobSpec spec;
    spec.core = baseCore64(2);
    spec.mixBenchmarks = { 0, 1 };
    std::string clean = spec.toJson();
    spec.fault = "crash";
    std::string faulty = spec.toJson();
    EXPECT_NE(clean, faulty);
    EXPECT_EQ(SweepJobSpec::fromJson(faulty).fault, "crash");
}

TEST(SweepJobSpec, RejectsForeignAndInconsistentDocuments)
{
    // Not a sweep-job document at all.
    EXPECT_DEATH(SweepJobSpec::fromJson("{\"spec\":\"other\"}"),
                 "format marker");
    EXPECT_DEATH(SweepJobSpec::fromJson("[1,2]"), "");
    // Mix size must match the core's thread count.
    SweepJobSpec spec;
    spec.core = baseCore64(4);
    spec.mixBenchmarks = { 0, 1 }; // only 2 entries for 4 threads
    EXPECT_DEATH(SweepJobSpec::fromJson(spec.toJson()), "threads");
}

} // namespace
