/**
 * @file
 * Unit tests for the scoreboard (polling wakeup model) and the
 * unordered issue queue.
 */

#include <gtest/gtest.h>

#include "core/iq.hh"
#include "core/scoreboard.hh"

using namespace shelf;

namespace
{

DynInstPtr
makeInst(ThreadID tid, SeqNum gseq, Tag s1 = kNoTag, Tag s2 = kNoTag)
{
    auto inst = makeDynInst();
    inst->tid = tid;
    inst->seq = gseq;
    inst->gseq = gseq;
    inst->srcTag[0] = s1;
    inst->srcTag[1] = s2;
    return inst;
}

} // namespace

TEST(Scoreboard, InitiallyAllReady)
{
    Scoreboard sb(16);
    for (Tag t = 0; t < 16; ++t)
        EXPECT_TRUE(sb.ready(t, 0));
    EXPECT_TRUE(sb.ready(kNoTag, 0)); // "no register" is ready
}

TEST(Scoreboard, PendingUntilSetReady)
{
    Scoreboard sb(16);
    sb.markPending(3);
    EXPECT_FALSE(sb.ready(3, 100));
    EXPECT_EQ(sb.readyAt(3), kCycleNever);
    sb.setReadyAt(3, 50);
    EXPECT_FALSE(sb.ready(3, 49));
    EXPECT_TRUE(sb.ready(3, 50));
}

TEST(Scoreboard, ClearPendingMakesReady)
{
    Scoreboard sb(8);
    sb.markPending(2);
    sb.clearPending(2);
    EXPECT_TRUE(sb.ready(2, 0));
}

TEST(Scoreboard, OutOfRangeTagDies)
{
    Scoreboard sb(4);
    EXPECT_DEATH(sb.markPending(4), "range");
    EXPECT_DEATH(sb.ready(99, 0), "range");
}

TEST(IQ, InsertAndCapacity)
{
    Scoreboard sb(16);
    IssueQueue iq(2);
    iq.insert(makeInst(0, 1), sb);
    EXPECT_EQ(iq.size(), 1u);
    iq.insert(makeInst(0, 2), sb);
    EXPECT_TRUE(iq.full());
    EXPECT_DEATH(iq.insert(makeInst(0, 3), sb), "full");
}

TEST(IQ, PendingSourceWaitsForWakeup)
{
    Scoreboard sb(16);
    IssueQueue iq(8);
    sb.markPending(5);
    auto blocked = makeInst(0, 1, 5);
    auto ready = makeInst(0, 2, 3);
    iq.insert(blocked, sb);
    iq.insert(ready, sb);
    auto r = iq.readyInsts(10);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0], ready);
    // The producer announces tag 5; the wakeup mirrors setReadyAt.
    sb.setReadyAt(5, 10);
    iq.wakeup(5, 10);
    EXPECT_EQ(iq.readyInsts(10).size(), 2u);
    EXPECT_TRUE(iq.readyInsts(9).size() == 1u); // not before cycle 10
}

TEST(IQ, InsertSnapshotsKnownReadyCycle)
{
    Scoreboard sb(16);
    IssueQueue iq(8);
    sb.markPending(7);
    sb.setReadyAt(7, 42); // ready cycle known before insert
    auto inst = makeInst(0, 1, 7);
    iq.insert(inst, sb);
    EXPECT_TRUE(iq.readyInsts(41).empty());
    EXPECT_EQ(iq.readyInsts(42).size(), 1u);
}

TEST(IQ, ReadyInstsAgeOrdered)
{
    Scoreboard sb(4);
    IssueQueue iq(8);
    iq.insert(makeInst(0, 30), sb);
    iq.insert(makeInst(0, 10), sb);
    iq.insert(makeInst(0, 20), sb);
    auto r = iq.readyInsts(0);
    ASSERT_EQ(r.size(), 3u);
    EXPECT_EQ(r[0]->gseq, 10u);
    EXPECT_EQ(r[1]->gseq, 20u);
    EXPECT_EQ(r[2]->gseq, 30u);
}

TEST(IQ, WokenInstJoinsListInAgeOrder)
{
    Scoreboard sb(8);
    IssueQueue iq(8);
    sb.markPending(2);
    iq.insert(makeInst(0, 10), sb);
    iq.insert(makeInst(0, 20, 2), sb); // waits on tag 2
    iq.insert(makeInst(0, 30), sb);
    sb.setReadyAt(2, 0);
    iq.wakeup(2, 0);
    auto r = iq.readyInsts(0);
    ASSERT_EQ(r.size(), 3u);
    EXPECT_EQ(r[0]->gseq, 10u);
    EXPECT_EQ(r[1]->gseq, 20u); // spliced between its neighbours
    EXPECT_EQ(r[2]->gseq, 30u);
}

TEST(IQ, DuplicateSourceTagWakesOnce)
{
    Scoreboard sb(8);
    IssueQueue iq(8);
    sb.markPending(3);
    auto inst = makeInst(0, 1, 3, 3); // both sources name tag 3
    iq.insert(inst, sb);
    EXPECT_TRUE(iq.readyInsts(100).empty());
    iq.wakeup(3, 5);
    auto r = iq.readyInsts(5);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0], inst);
}

TEST(IQ, SelectReadySkipsBlockedAndFuture)
{
    Scoreboard sb(8);
    IssueQueue iq(8);
    sb.markPending(1);
    sb.setReadyAt(1, 50);
    auto future = makeInst(0, 1, 1); // ready only at cycle 50
    auto blocked = makeInst(0, 2);
    auto eligible = makeInst(0, 3);
    iq.insert(future, sb);
    iq.insert(blocked, sb);
    iq.insert(eligible, sb);
    DynInst *got = iq.selectReady(0, [&](const DynInst &c) {
        return c.gseq == 2; // external constraint blocks gseq 2
    });
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->gseq, 3u);
    // At cycle 50 the elder instruction wins.
    got = iq.selectReady(50, [](const DynInst &) { return false; });
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->gseq, 1u);
}

TEST(IQ, RemoveIssuedFreesSlot)
{
    Scoreboard sb(4);
    IssueQueue iq(1);
    auto a = makeInst(0, 1);
    iq.insert(a, sb);
    iq.removeIssued(a);
    EXPECT_EQ(iq.size(), 0u);
    iq.insert(makeInst(0, 2), sb); // slot reusable
}

TEST(IQ, RemoveAbsentDies)
{
    IssueQueue iq(2);
    EXPECT_DEATH(iq.removeIssued(makeInst(0, 1)), "not in IQ");
}

TEST(IQ, RemoveTwiceDies)
{
    Scoreboard sb(4);
    IssueQueue iq(2);
    auto a = makeInst(0, 1);
    iq.insert(a, sb);
    iq.removeIssued(a);
    EXPECT_DEATH(iq.removeIssued(a), "not in IQ");
}

TEST(IQ, SquashRemovesYoungOfThread)
{
    Scoreboard sb(4);
    IssueQueue iq(8);
    iq.insert(makeInst(0, 1), sb);
    iq.insert(makeInst(0, 5), sb);
    iq.insert(makeInst(1, 9), sb);
    iq.squash(0, 1); // remove thread-0 insts with seq > 1
    auto r = iq.readyInsts(0);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0]->seq, 1u);
    EXPECT_EQ(r[1]->tid, 1);
}

TEST(IQ, SquashRemovesWaiters)
{
    Scoreboard sb(8);
    IssueQueue iq(8);
    sb.markPending(4);
    auto survivor = makeInst(0, 1, 4);
    auto doomed = makeInst(0, 5, 4);
    iq.insert(survivor, sb);
    iq.insert(doomed, sb);
    iq.squash(0, 1); // drop the younger waiter from the chain
    EXPECT_EQ(iq.size(), 1u);
    iq.wakeup(4, 7);
    auto r = iq.readyInsts(7);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0], survivor);
}
