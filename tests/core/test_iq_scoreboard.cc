/**
 * @file
 * Unit tests for the scoreboard (polling wakeup model) and the
 * unordered issue queue.
 */

#include <gtest/gtest.h>

#include "core/iq.hh"
#include "core/scoreboard.hh"

using namespace shelf;

namespace
{

DynInstPtr
makeInst(ThreadID tid, SeqNum gseq, Tag s1 = kNoTag, Tag s2 = kNoTag)
{
    auto inst = std::make_shared<DynInst>();
    inst->tid = tid;
    inst->seq = gseq;
    inst->gseq = gseq;
    inst->srcTag[0] = s1;
    inst->srcTag[1] = s2;
    return inst;
}

} // namespace

TEST(Scoreboard, InitiallyAllReady)
{
    Scoreboard sb(16);
    for (Tag t = 0; t < 16; ++t)
        EXPECT_TRUE(sb.ready(t, 0));
    EXPECT_TRUE(sb.ready(kNoTag, 0)); // "no register" is ready
}

TEST(Scoreboard, PendingUntilSetReady)
{
    Scoreboard sb(16);
    sb.markPending(3);
    EXPECT_FALSE(sb.ready(3, 100));
    EXPECT_EQ(sb.readyAt(3), kCycleNever);
    sb.setReadyAt(3, 50);
    EXPECT_FALSE(sb.ready(3, 49));
    EXPECT_TRUE(sb.ready(3, 50));
}

TEST(Scoreboard, ClearPendingMakesReady)
{
    Scoreboard sb(8);
    sb.markPending(2);
    sb.clearPending(2);
    EXPECT_TRUE(sb.ready(2, 0));
}

TEST(Scoreboard, OutOfRangeTagDies)
{
    Scoreboard sb(4);
    EXPECT_DEATH(sb.markPending(4), "range");
    EXPECT_DEATH(sb.ready(99, 0), "range");
}

TEST(IQ, InsertAndCapacity)
{
    IssueQueue iq(2);
    iq.insert(makeInst(0, 1));
    EXPECT_EQ(iq.size(), 1u);
    iq.insert(makeInst(0, 2));
    EXPECT_TRUE(iq.full());
    EXPECT_DEATH(iq.insert(makeInst(0, 3)), "full");
}

TEST(IQ, ReadyInstsFiltersOnScoreboard)
{
    Scoreboard sb(16);
    IssueQueue iq(8);
    sb.markPending(5);
    auto blocked = makeInst(0, 1, 5);
    auto ready = makeInst(0, 2, 3);
    iq.insert(blocked);
    iq.insert(ready);
    auto r = iq.readyInsts(10, sb);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0], ready);
    sb.setReadyAt(5, 10);
    EXPECT_EQ(iq.readyInsts(10, sb).size(), 2u);
}

TEST(IQ, ReadyInstsAgeOrdered)
{
    Scoreboard sb(4);
    IssueQueue iq(8);
    iq.insert(makeInst(0, 30));
    iq.insert(makeInst(0, 10));
    iq.insert(makeInst(0, 20));
    auto r = iq.readyInsts(0, sb);
    ASSERT_EQ(r.size(), 3u);
    EXPECT_EQ(r[0]->gseq, 10u);
    EXPECT_EQ(r[1]->gseq, 20u);
    EXPECT_EQ(r[2]->gseq, 30u);
}

TEST(IQ, RemoveIssuedFreesSlot)
{
    Scoreboard sb(4);
    IssueQueue iq(1);
    auto a = makeInst(0, 1);
    iq.insert(a);
    iq.removeIssued(a);
    EXPECT_EQ(iq.size(), 0u);
    iq.insert(makeInst(0, 2)); // slot reusable
}

TEST(IQ, RemoveAbsentDies)
{
    IssueQueue iq(2);
    EXPECT_DEATH(iq.removeIssued(makeInst(0, 1)), "not in IQ");
}

TEST(IQ, SquashRemovesYoungOfThread)
{
    Scoreboard sb(4);
    IssueQueue iq(8);
    iq.insert(makeInst(0, 1));
    iq.insert(makeInst(0, 5));
    iq.insert(makeInst(1, 9));
    iq.squash(0, 1); // remove thread-0 insts with seq > 1
    auto r = iq.readyInsts(0, sb);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0]->seq, 1u);
    EXPECT_EQ(r[1]->tid, 1);
}

TEST(IQ, IssuedInstsNotReported)
{
    Scoreboard sb(4);
    IssueQueue iq(4);
    auto a = makeInst(0, 1);
    iq.insert(a);
    a->issued = true;
    EXPECT_TRUE(iq.readyInsts(0, sb).empty());
}
