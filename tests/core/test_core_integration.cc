/**
 * @file
 * Integration tests for the full core pipeline on hand-crafted
 * traces: throughput bounds, dependence stalls, in-order (shelf)
 * semantics, branch squash recovery, memory-order violations, and a
 * parameterized invariant sweep across configurations and seeds.
 */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "mem/hierarchy.hh"
#include "workload/generator.hh"
#include "workload/spec2006.hh"

using namespace shelf;

namespace
{

TraceInst
alu(RegId dst, RegId s1 = kNoReg, RegId s2 = kNoReg)
{
    TraceInst t;
    t.op = OpClass::IntAlu;
    t.dst = dst;
    t.src1 = s1;
    t.src2 = s2;
    t.pc = 0x1000;
    return t;
}

TraceInst
load(RegId dst, RegId addr_reg, Addr addr)
{
    TraceInst t;
    t.op = OpClass::MemRead;
    t.dst = dst;
    t.src1 = addr_reg;
    t.addr = addr;
    t.size = 8;
    t.pc = 0x1000;
    return t;
}

TraceInst
store(RegId addr_reg, RegId val_reg, Addr addr)
{
    TraceInst t;
    t.op = OpClass::MemWrite;
    t.src1 = addr_reg;
    t.src2 = val_reg;
    t.addr = addr;
    t.size = 8;
    t.pc = 0x1000;
    return t;
}

TraceInst
branch(bool taken, Addr pc)
{
    TraceInst t;
    t.op = OpClass::Branch;
    t.src1 = 0;
    t.taken = taken;
    t.pc = pc;
    return t;
}

/** Repeat a block of instructions to the requested length. */
Trace
repeat(const std::vector<TraceInst> &block, size_t n)
{
    Trace t;
    while (t.size() < n)
        for (const auto &inst : block)
            t.push_back(inst);
    t.resize(n);
    // Give instructions distinct PCs within a small region.
    for (size_t i = 0; i < t.size(); ++i)
        if (!t[i].isBranch())
            t[i].pc = 0x1000 + 4 * (i % 512);
    return t;
}

struct CoreHarness
{
    CoreHarness(CoreParams p, Trace trace_in)
        : params(std::move(p)), trace(std::move(trace_in))
    {
        std::vector<const Trace *> traces;
        for (unsigned t = 0; t < params.threads; ++t)
            traces.push_back(&trace);
        // Warm everything so timing is deterministic and fast.
        for (const auto &inst : trace) {
            mem.warmInst(inst.pc);
            if (inst.isMem())
                mem.warmData(inst.addr);
        }
        core = std::make_unique<Core>(params, mem, traces);
        core->setCheckInvariants(true);
    }

    MemHierarchy mem;
    CoreParams params;
    Trace trace;
    std::unique_ptr<Core> core;
};

} // namespace

TEST(CoreIntegration, IndependentAluBoundByWidth)
{
    // 4 independent ALU streams: IPC should approach issue width.
    std::vector<TraceInst> block = { alu(0, 12), alu(1, 13),
                                     alu(2, 14), alu(3, 15) };
    CoreHarness h(baseCore64(1), repeat(block, 8000));
    h.core->run(1500);
    double ipc = h.core->totalIpc();
    EXPECT_GT(ipc, 3.0);
    EXPECT_LE(ipc, 4.0);
}

TEST(CoreIntegration, DependentChainSerializes)
{
    // r0 <- r0 chain: one instruction per cycle at best.
    std::vector<TraceInst> block = { alu(0, 0) };
    CoreHarness h(baseCore64(1), repeat(block, 4000));
    h.core->run(1500);
    double ipc = h.core->totalIpc();
    EXPECT_GT(ipc, 0.8);
    EXPECT_LE(ipc, 1.02);
}

TEST(CoreIntegration, ChainIsInSequence)
{
    // A pure dependence chain issues in program order: (almost)
    // every retired instruction classifies as in-sequence.
    std::vector<TraceInst> block = { alu(0, 0) };
    CoreHarness h(baseCore64(1), repeat(block, 4000));
    h.core->run(1200);
    EXPECT_GT(h.core->classify().inSequenceFraction(), 0.95);
}

TEST(CoreIntegration, LoadMissesCreateReordering)
{
    // Alternating long-miss loads and independent ALU work causes
    // younger ALU ops to issue past stalled loads.
    std::vector<TraceInst> block;
    for (int i = 0; i < 4; ++i) {
        // Cold addresses (never warmed: outside the trace footprint
        // wait -- harness warms all trace addresses; use a dependent
        // chain through loads instead).
        block.push_back(load(0, 0, 0x100));
        block.push_back(alu(1, 0)); // depends on the load
        block.push_back(alu(2, 12));
        block.push_back(alu(3, 13));
    }
    CoreHarness h(baseCore64(1), repeat(block, 4000));
    h.core->run(1200);
    double frac = h.core->classify().inSequenceFraction();
    EXPECT_LT(frac, 0.9);
    EXPECT_GT(h.core->classify().totalRetired(), 500u);
}

TEST(CoreIntegration, AlwaysShelfBehavesInOrder)
{
    CoreParams p = shelfCore(1, false, SteerPolicyKind::AlwaysShelf);
    std::vector<TraceInst> block = { alu(0, 12), alu(1, 0),
                                     alu(2, 13), alu(3, 14) };
    CoreHarness h(p, repeat(block, 4000));
    h.core->run(1500);
    // Every instruction must classify in-sequence (in-order issue).
    EXPECT_DOUBLE_EQ(h.core->classify().inSequenceFraction(), 1.0);
    EXPECT_GT(h.core->classify().totalRetired(), 500u);
    // No instruction ever entered the IQ.
    EXPECT_EQ(h.core->eventCounts().iqIssues, 0u);
    EXPECT_GT(h.core->eventCounts().shelfIssues, 0u);
}

TEST(CoreIntegration, ShelfWawStall)
{
    // Shelf instruction overwrites the physical register of a
    // long-latency IQ producer: it must wait for the writeback (WAW
    // through the shared PRI).
    CoreParams p = shelfCore(1, false, SteerPolicyKind::AlwaysShelf);
    std::vector<TraceInst> block;
    TraceInst d = alu(5, 12);
    d.op = OpClass::IntDiv;
    block.push_back(d);        // writes r5, 12 cycles
    block.push_back(alu(5, 13)); // shelf overwrite of r5
    block.push_back(alu(6, 5));  // reads r5
    CoreHarness h(p, repeat(block, 3000));
    h.core->run(1500);
    // Serialized by the divide: throughput bounded near 3/12.
    EXPECT_LT(h.core->totalIpc(), 0.5);
    EXPECT_GT(h.core->classify().totalRetired(), 100u);
}

TEST(CoreIntegration, MispredictedBranchesSquashAndRecover)
{
    // Pseudo-random branch outcomes cannot be predicted: squashes
    // must happen, and retirement must continue correctly afterwards.
    Trace trace;
    uint64_t lfsr = 0xACE1u;
    for (int i = 0; i < 6000; ++i) {
        trace.push_back(alu(i % 8, 12));
        lfsr = (lfsr >> 1) ^ (-(lfsr & 1u) & 0xB400u);
        trace.push_back(branch(lfsr & 1, 0x2000 + 4 * (i % 16)));
    }
    CoreHarness h(baseCore64(1), trace);
    h.core->run(2500);
    EXPECT_GT(h.core->coreStatistics().branchSquashes, 10u);
    EXPECT_GT(h.core->classify().totalRetired(), 800u);
}

TEST(CoreIntegration, StoreLoadForwardingFast)
{
    // Store followed by a load of the same address: forwarding keeps
    // the dependent chain quick despite memory traffic.
    std::vector<TraceInst> block = {
        store(12, 13, 0x500), load(0, 12, 0x500), alu(1, 0),
        alu(2, 14),
    };
    CoreHarness h(baseCore64(1), repeat(block, 4000));
    h.core->run(1500);
    EXPECT_GT(h.core->lsqUnit().forwards.value(), 100.0);
    EXPECT_GT(h.core->totalIpc(), 0.8);
}

TEST(CoreIntegration, SmtThreadsShareTheCore)
{
    std::vector<TraceInst> block = { alu(0, 12), alu(1, 0),
                                     alu(2, 13), alu(3, 1) };
    CoreHarness h(baseCore64(4), repeat(block, 4000));
    h.core->run(2000);
    for (unsigned t = 0; t < 4; ++t)
        EXPECT_GT(h.core->retired(static_cast<ThreadID>(t)), 200u)
            << "thread " << t << " starved";
    // More threads -> more in-sequence instructions (paper Fig. 1).
    CoreHarness h1(baseCore64(1), repeat(block, 4000));
    h1.core->run(2000);
    EXPECT_GT(h.core->classify().inSequenceFraction(),
              h1.core->classify().inSequenceFraction());
}

TEST(CoreIntegration, ShelfConfigRetiresSameWork)
{
    // Shelf vs baseline on the same trace: both must retire the
    // trace in order; the shelf must actually be used.
    std::vector<TraceInst> block = { alu(0, 12), alu(1, 0),
                                     load(2, 14, 0x800), alu(3, 2) };
    CoreParams p = shelfCore(4, true, SteerPolicyKind::Practical);
    CoreHarness h(p, repeat(block, 4000));
    h.core->run(2500);
    EXPECT_GT(h.core->eventCounts().shelfIssues, 100u);
    EXPECT_GT(h.core->classify().totalRetired(), 1000u);
}

// ---------------------------------------------------------------
// Property sweep: run every configuration against every seed with
// invariant checks enabled; the pipeline must stay live (no
// deadlock) and retire steadily.
// ---------------------------------------------------------------

struct SweepParam
{
    unsigned threads;
    bool shelf;
    bool optimistic;
    SteerPolicyKind steering;
    uint64_t seed;
};

class CoreSweepTest : public ::testing::TestWithParam<SweepParam>
{};

TEST_P(CoreSweepTest, RunsLiveWithInvariants)
{
    const SweepParam &sp = GetParam();
    CoreParams p = sp.shelf
        ? shelfCore(sp.threads, sp.optimistic, sp.steering)
        : baseCore64(sp.threads);

    // Mixed real-profile workload for realistic squash/memory
    // behaviour.
    const char *names[4] = { "gcc", "mcf", "hmmer", "gobmk" };
    std::vector<Trace> traces;
    for (unsigned t = 0; t < sp.threads; ++t) {
        TraceGenerator gen(spec2006Profile(names[t % 4]),
                           sp.seed + t, static_cast<Addr>(t) << 30);
        traces.push_back(gen.generate(30000));
    }

    MemHierarchy mem;
    for (const auto &tr : traces) {
        for (const auto &inst : tr) {
            mem.warmInst(inst.pc);
            if (inst.isMem())
                mem.warmData(inst.addr);
        }
    }
    std::vector<const Trace *> ptrs;
    for (const auto &tr : traces)
        ptrs.push_back(&tr);

    Core core(p, mem, ptrs);
    core.setCheckInvariants(true);
    core.run(4000);

    EXPECT_GT(core.coreStatistics().totalRetired(), 400u)
        << "pipeline must stay live";
    for (unsigned t = 0; t < sp.threads; ++t)
        EXPECT_GT(core.retired(static_cast<ThreadID>(t)), 20u)
            << "thread " << t << " starved";

    // Classification sanity.
    double frac = core.classify().inSequenceFraction();
    EXPECT_GE(frac, 0.0);
    EXPECT_LE(frac, 1.0);
}

static std::vector<SweepParam>
sweepCases()
{
    std::vector<SweepParam> cases;
    for (unsigned threads : { 1u, 2u, 4u }) {
        for (uint64_t seed : { 1ULL, 99ULL }) {
            cases.push_back({ threads, false, false,
                              SteerPolicyKind::AlwaysIQ, seed });
            cases.push_back({ threads, true, false,
                              SteerPolicyKind::Practical, seed });
            cases.push_back({ threads, true, true,
                              SteerPolicyKind::Practical, seed });
            cases.push_back({ threads, true, false,
                              SteerPolicyKind::Oracle, seed });
            cases.push_back({ threads, true, true,
                              SteerPolicyKind::AlwaysShelf, seed });
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CoreSweepTest, ::testing::ValuesIn(sweepCases()),
    [](const ::testing::TestParamInfo<SweepParam> &info) {
        const SweepParam &sp = info.param;
        std::string name = std::to_string(sp.threads) + "t_";
        name += sp.shelf ? steerPolicyName(sp.steering)
                         : "baseline";
        name += sp.optimistic ? "_opt" : "_cons";
        name += "_s" + std::to_string(sp.seed);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });
