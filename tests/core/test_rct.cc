/**
 * @file
 * Ready Cycle Table unit tests: saturating set, per-cycle decrement
 * with and without the PLT freeze mask, saturation at zero, width
 * validation, and thread independence (paper Figure 9 / Table I's
 * 5-bit counters).
 */

#include <gtest/gtest.h>

#include "core/steer/rct.hh"

using namespace shelf;

namespace
{

TEST(Rct, FiveBitCounterSaturatesAtThirtyOne)
{
    ReadyCycleTable rct(1, 5);
    EXPECT_EQ(rct.maxValue(), 31u);
    rct.set(0, 3, 17);
    EXPECT_EQ(rct.get(0, 3), 17u);
    rct.set(0, 3, 31);
    EXPECT_EQ(rct.get(0, 3), 31u);
    rct.set(0, 3, 32);
    EXPECT_EQ(rct.get(0, 3), 31u);
    rct.set(0, 3, 1000);
    EXPECT_EQ(rct.get(0, 3), 31u);
}

TEST(Rct, WidthScalesTheSaturationPoint)
{
    ReadyCycleTable narrow(1, 3);
    EXPECT_EQ(narrow.maxValue(), 7u);
    narrow.set(0, 0, 100);
    EXPECT_EQ(narrow.get(0, 0), 7u);

    ReadyCycleTable wide(1, 8);
    EXPECT_EQ(wide.maxValue(), 255u);
    wide.set(0, 0, 100);
    EXPECT_EQ(wide.get(0, 0), 100u);
}

TEST(Rct, RejectsDegenerateWidths)
{
    EXPECT_DEATH(ReadyCycleTable(1, 0), "RCT width");
    EXPECT_DEATH(ReadyCycleTable(1, 9), "RCT width");
}

TEST(Rct, TickAllDecrementsAndStopsAtZero)
{
    ReadyCycleTable rct(1, 5);
    rct.set(0, 5, 2);
    rct.set(0, 7, 1);
    rct.tickAll(0);
    EXPECT_EQ(rct.get(0, 5), 1u);
    EXPECT_EQ(rct.get(0, 7), 0u);
    rct.tickAll(0);
    EXPECT_EQ(rct.get(0, 5), 0u);
    EXPECT_EQ(rct.get(0, 7), 0u);
    // Zero saturates: further ticks must not wrap around.
    rct.tickAll(0);
    EXPECT_EQ(rct.get(0, 5), 0u);
    EXPECT_EQ(rct.get(0, 7), 0u);
}

TEST(Rct, FreezeMaskExemptsRegistersFromDecrement)
{
    ReadyCycleTable rct(1, 5);
    rct.set(0, 2, 4);
    rct.set(0, 3, 4);
    std::vector<bool> freeze(kNumArchRegs, false);
    freeze[2] = true;

    rct.tick(0, freeze);
    EXPECT_EQ(rct.get(0, 2), 4u); // frozen by a slow parent load
    EXPECT_EQ(rct.get(0, 3), 3u);

    freeze[2] = false;
    rct.tick(0, freeze);
    EXPECT_EQ(rct.get(0, 2), 3u); // thawed: counts down again
    EXPECT_EQ(rct.get(0, 3), 2u);
}

TEST(Rct, ThreadsAreIndependent)
{
    ReadyCycleTable rct(2, 5);
    rct.set(0, 4, 10);
    rct.set(1, 4, 20);
    rct.tickAll(0);
    EXPECT_EQ(rct.get(0, 4), 9u);
    EXPECT_EQ(rct.get(1, 4), 20u); // other thread's tick untouched
}

TEST(Rct, ResetClearsEveryCounter)
{
    ReadyCycleTable rct(2, 5);
    rct.set(0, 1, 31);
    rct.set(1, 2, 31);
    rct.reset();
    EXPECT_EQ(rct.get(0, 1), 0u);
    EXPECT_EQ(rct.get(1, 2), 0u);
}

} // namespace
