/**
 * @file
 * Unit tests for the shelf FIFO: entry recycling at issue, the
 * doubled virtual index space, the retire bitvector/pointer, and
 * squash rollback (paper section III-B).
 */

#include <gtest/gtest.h>

#include "core/shelf.hh"

using namespace shelf;

namespace
{

DynInstPtr
makeInst(SeqNum seq)
{
    auto inst = makeDynInst();
    inst->tid = 0;
    inst->seq = seq;
    return inst;
}

} // namespace

TEST(Shelf, DisabledWhenZeroEntries)
{
    Shelf sh(1, 0);
    EXPECT_FALSE(sh.enabled());
    EXPECT_FALSE(sh.canDispatch(0));
}

TEST(Shelf, FifoOrder)
{
    Shelf sh(1, 4);
    auto a = makeInst(1);
    auto b = makeInst(2);
    EXPECT_EQ(sh.dispatch(0, a), 0u);
    EXPECT_EQ(sh.dispatch(0, b), 1u);
    EXPECT_EQ(sh.head(0), a);
    sh.issueHead(0);
    EXPECT_EQ(sh.head(0), b);
}

TEST(Shelf, EntryRecyclesAtIssueIndexAtRetire)
{
    Shelf sh(1, 2); // 2 entries, 4 virtual indices
    sh.dispatch(0, makeInst(1));
    sh.dispatch(0, makeInst(2));
    EXPECT_FALSE(sh.canDispatch(0)); // entries full

    sh.issueHead(0); // entry free, index 0 still reserved
    EXPECT_TRUE(sh.canDispatch(0));
    sh.dispatch(0, makeInst(3));
    sh.issueHead(0);
    sh.issueHead(0);
    // All three entries free; but indices 0..2 unretired: only one
    // more dispatch fits in the 2x index space (indices 0..3).
    EXPECT_TRUE(sh.canDispatch(0));
    sh.dispatch(0, makeInst(4));
    EXPECT_FALSE(sh.canDispatch(0)) << "index space must be exhausted";

    sh.markRetired(0, 0);
    EXPECT_EQ(sh.retirePointer(0), 1u);
    EXPECT_TRUE(sh.canDispatch(0));
}

TEST(Shelf, OutOfOrderRetirementBitvector)
{
    Shelf sh(1, 4);
    for (SeqNum s = 0; s < 3; ++s)
        sh.dispatch(0, makeInst(s));
    sh.issueHead(0);
    sh.issueHead(0);
    sh.issueHead(0);
    // Retire 2 and 1 before 0: pointer must not move.
    sh.markRetired(0, 2);
    sh.markRetired(0, 1);
    EXPECT_EQ(sh.retirePointer(0), 0u);
    sh.markRetired(0, 0);
    EXPECT_EQ(sh.retirePointer(0), 3u); // sweeps the whole bitvector
}

TEST(Shelf, RetireUnissuedIndexDies)
{
    Shelf sh(1, 4);
    sh.dispatch(0, makeInst(1));
    EXPECT_DEATH(sh.markRetired(0, 0), "unissued");
}

TEST(Shelf, DoubleRetireDies)
{
    Shelf sh(1, 4);
    sh.dispatch(0, makeInst(1));
    sh.issueHead(0);
    sh.markRetired(0, 0);
    EXPECT_DEATH(sh.markRetired(0, 0), "double");
}

TEST(Shelf, SquashFromRollsBackUnissuedTail)
{
    Shelf sh(1, 8);
    std::vector<DynInstPtr> insts;
    for (SeqNum s = 0; s < 4; ++s) {
        insts.push_back(makeInst(s));
        sh.dispatch(0, insts.back());
    }
    sh.issueHead(0); // index 0 issued and in flight
    auto squashed = sh.squashFrom(0, 2);
    ASSERT_EQ(squashed.size(), 2u);
    EXPECT_EQ(squashed[0], insts[3]); // youngest first
    EXPECT_EQ(squashed[1], insts[2]);
    EXPECT_EQ(sh.size(0), 1u);
    // Indices 2,3 are reusable immediately (tail rollback).
    EXPECT_EQ(sh.dispatch(0, makeInst(9)), 2u);
}

TEST(Shelf, ThreadsPartitioned)
{
    Shelf sh(2, 2);
    sh.dispatch(0, makeInst(1));
    sh.dispatch(0, makeInst(2));
    EXPECT_FALSE(sh.canDispatch(0));
    EXPECT_TRUE(sh.canDispatch(1));
    EXPECT_EQ(sh.tailIndex(1), 0u);
}

TEST(Shelf, SqueezeStress)
{
    Shelf sh(1, 4);
    SeqNum next = 0;
    VIdx retired = 0;
    // Pipeline of dispatch -> issue -> retire with random-ish lag.
    for (int step = 0; step < 200; ++step) {
        if (sh.canDispatch(0))
            sh.dispatch(0, makeInst(next++));
        if (sh.size(0) > 2)
            sh.issueHead(0);
        // Retire with lag in the doubled index space.
        while (retired + 6 < sh.tailIndex(0))
            sh.markRetired(0, retired++);
    }
    EXPECT_LE(sh.tailIndex(0) - sh.retirePointer(0), 8u);
}
