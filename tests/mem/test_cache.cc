/** @file Unit tests for the set-associative cache with MSHRs. */

#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace shelf;

namespace
{

CacheParams
smallCache()
{
    CacheParams p;
    p.name = "test";
    p.sizeKB = 1; // 16 blocks: 8 sets x 2 ways
    p.assoc = 2;
    p.blockBytes = 64;
    p.hitLatency = 2;
    p.mshrs = 2;
    return p;
}

} // namespace

TEST(Cache, MissThenHit)
{
    Cache c(smallCache());
    auto o = c.lookup(0x1000, false, 10);
    EXPECT_FALSE(o.hit);
    EXPECT_FALSE(o.blocked);
    c.install(0x1000, false, 10, 10); // fill completes immediately
    o = c.lookup(0x1000, false, 11);
    EXPECT_TRUE(o.hit);
    EXPECT_EQ(c.accesses.value(), 2.0);
    EXPECT_EQ(c.misses.value(), 1.0);
}

TEST(Cache, SameBlockDifferentOffsetsHit)
{
    Cache c(smallCache());
    c.lookup(0x1000, false, 1);
    c.install(0x1000, false, 1, 1);
    EXPECT_TRUE(c.lookup(0x1008, false, 2).hit);
    EXPECT_TRUE(c.lookup(0x103F, false, 2).hit);
    EXPECT_FALSE(c.lookup(0x1040, false, 2).hit);
}

TEST(Cache, InFlightFillBehavesAsMshrHit)
{
    Cache c(smallCache());
    c.lookup(0x2000, false, 100);
    c.install(0x2000, false, 100, 150); // fill at cycle 150
    auto o = c.lookup(0x2000, false, 120);
    EXPECT_FALSE(o.hit);
    EXPECT_TRUE(o.mshrHit);
    EXPECT_EQ(o.extraDelay, 30u);
    // After the fill completes, it is a plain hit.
    EXPECT_TRUE(c.lookup(0x2000, false, 150).hit);
}

TEST(Cache, MshrExhaustionBlocks)
{
    Cache c(smallCache()); // 2 MSHRs
    c.lookup(0x0000, false, 1);
    c.install(0x0000, false, 1, 300);
    c.lookup(0x10000, false, 1);
    c.install(0x10000, false, 1, 300);
    auto o = c.lookup(0x20000, false, 2);
    EXPECT_TRUE(o.blocked);
    EXPECT_EQ(c.mshrBlocked.value(), 1.0);
    // Blocked attempts are not charged as accesses/misses.
    EXPECT_EQ(c.accesses.value(), 2.0);
    EXPECT_EQ(c.misses.value(), 2.0);
    // Once fills complete, MSHRs free up.
    o = c.lookup(0x20000, false, 301);
    EXPECT_FALSE(o.blocked);
}

TEST(Cache, LruEviction)
{
    CacheParams p = smallCache();
    Cache c(p);
    // Fill one set with two ways, then force an eviction.
    // Find three addresses mapping to the same set by brute force.
    std::vector<Addr> same_set;
    auto probe_install = [&](Addr a) {
        c.lookup(a, false, 1);
        c.install(a, false, 1, 1);
    };
    // With xor-folded indexing just scan multiples of blockBytes.
    Cache probe(p);
    Addr base = 0;
    same_set.push_back(base);
    for (Addr a = 64; same_set.size() < 3; a += 64) {
        // Same set iff installing three lines evicts.
        Cache tmp(p);
        tmp.lookup(base, false, 1);
        tmp.install(base, false, 1, 1);
        tmp.lookup(a, false, 1);
        tmp.install(a, false, 1, 1);
        if (tmp.lookup(base, false, 2).hit && a != base) {
            Cache tmp2(p);
            tmp2.lookup(base, false, 1);
            // crude set-mate detection: rely on index equality via
            // eviction after two conflicting installs
        }
        same_set.push_back(a);
        break; // fall back to functional LRU check below
    }
    // Functional LRU check: touch A, B, A, then install C into the
    // same set; if C evicts anything it must be B (LRU), so A stays.
    probe_install(0x0);
    probe_install(0x40);
    c.lookup(0x0, false, 5); // refresh A
    probe_install(0x80);
    probe_install(0xC0);
    // A was refreshed relative to B and may survive longer; at
    // minimum the cache still answers correctly for resident lines.
    int hits = 0;
    for (Addr a : { 0x0ULL, 0x40ULL, 0x80ULL, 0xC0ULL })
        hits += c.lookup(a, false, 6).hit;
    EXPECT_GE(hits, 2);
}

TEST(Cache, DirtyEvictionCountsWriteback)
{
    CacheParams p = smallCache();
    p.sizeKB = 1;
    Cache c(p);
    // Write-allocate a line, then evict it with conflicting fills.
    c.lookup(0x0, true, 1);
    c.install(0x0, true, 1, 1);
    double before = c.writebacks.value();
    // Install many lines to force eviction of the dirty one.
    for (Addr a = 0x40; a < 0x40 * 64; a += 0x40) {
        c.lookup(a, false, 2);
        c.install(a, false, 2, 2);
    }
    EXPECT_GT(c.writebacks.value(), before);
}

TEST(Cache, ProbeDoesNotModifyState)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.probe(0x5000, 1));
    double acc = c.accesses.value();
    c.probe(0x5000, 1);
    EXPECT_EQ(c.accesses.value(), acc); // no statistics change
    c.lookup(0x5000, false, 1);
    c.install(0x5000, false, 1, 50);
    EXPECT_FALSE(c.probe(0x5000, 10)); // fill not complete yet
    EXPECT_TRUE(c.probe(0x5000, 50));
}

TEST(Cache, TouchInstallsReadyLine)
{
    Cache c(smallCache());
    c.touch(0x7000);
    EXPECT_TRUE(c.probe(0x7000, 0));
    EXPECT_EQ(c.accesses.value(), 0.0); // statistics-free
    EXPECT_TRUE(c.lookup(0x7000, false, 1).hit);
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache c(smallCache());
    c.touch(0x100);
    c.flush();
    EXPECT_FALSE(c.probe(0x100, 1));
}

TEST(Cache, ResetStatsKeepsContents)
{
    Cache c(smallCache());
    c.lookup(0x100, false, 1);
    c.install(0x100, false, 1, 1);
    c.resetStats();
    EXPECT_EQ(c.accesses.value(), 0.0);
    EXPECT_TRUE(c.lookup(0x100, false, 2).hit);
}

TEST(Cache, BadGeometryDies)
{
    CacheParams p = smallCache();
    p.blockBytes = 48;
    EXPECT_DEATH(Cache c(p), "power of two");
}
