/** @file Tests for the two-level hierarchy timing model. */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

using namespace shelf;

TEST(Hierarchy, ColdMissPaysFullLatency)
{
    MemHierarchy m;
    auto r = m.accessData(0x1000, false, 100);
    EXPECT_FALSE(r.blocked);
    EXPECT_EQ(r.level, 3);
    // L1 (2) + L2 (32) + memory (200)
    EXPECT_EQ(r.latency, 2u + 32u + 200u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    MemHierarchy m;
    m.l2().touch(0x1000);
    auto r = m.accessData(0x1000, false, 100);
    EXPECT_EQ(r.level, 2);
    EXPECT_EQ(r.latency, 2u + 32u);
}

TEST(Hierarchy, L1HitIsHitLatency)
{
    MemHierarchy m;
    m.warmData(0x1000);
    auto r = m.accessData(0x1000, false, 100);
    EXPECT_EQ(r.level, 1);
    EXPECT_EQ(r.latency, 2u);
}

TEST(Hierarchy, InstPathUsesL1iLatency)
{
    MemHierarchy m;
    m.warmInst(0x4000);
    auto r = m.accessInst(0x4000, 10);
    EXPECT_EQ(r.level, 1);
    EXPECT_EQ(r.latency, 1u);
}

TEST(Hierarchy, SecondAccessDuringFillWaitsRemainder)
{
    MemHierarchy m;
    auto first = m.accessData(0x2000, false, 100);
    ASSERT_EQ(first.level, 3);
    auto second = m.accessData(0x2000, false, 150);
    EXPECT_GT(second.latency, 0u);
    EXPECT_LT(second.latency, first.latency);
    // The fill completes at cycle 334 (= 100 + 234); from cycle 150
    // that is 184 cycles away, plus the L1 hit latency.
    EXPECT_EQ(second.latency, 2u + (334 - 150));
}

TEST(Hierarchy, ProbeLatencyMatchesAccessLevels)
{
    MemHierarchy m;
    EXPECT_EQ(m.probeDataLatency(0x9000, 5), 2u + 32u + 200u);
    m.l2().touch(0x9000);
    EXPECT_EQ(m.probeDataLatency(0x9000, 5), 2u + 32u);
    m.warmData(0x9000);
    EXPECT_EQ(m.probeDataLatency(0x9000, 5), 2u);
}

TEST(Hierarchy, WarmupIsStatisticsFree)
{
    MemHierarchy m;
    m.warmData(0x1);
    m.warmInst(0x2);
    EXPECT_EQ(m.l1d().accesses.value(), 0.0);
    EXPECT_EQ(m.l1i().accesses.value(), 0.0);
    EXPECT_EQ(m.l2().accesses.value(), 0.0);
}

TEST(Hierarchy, CustomParamsRespected)
{
    HierarchyParams p;
    p.l1d.hitLatency = 3;
    p.l2.hitLatency = 20;
    p.memLatency = 150;
    MemHierarchy m(p);
    auto r = m.accessData(0x1000, false, 0);
    EXPECT_EQ(r.latency, 3u + 20u + 150u);
}
