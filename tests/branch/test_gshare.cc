/** @file Tests for the gshare/bimodal branch predictor. */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "branch/gshare.hh"

using namespace shelf;

TEST(Gshare, LearnsAlwaysTaken)
{
    GsharePredictor bp(10, 0, 1);
    for (int i = 0; i < 10; ++i)
        bp.update(0, 0x100, true);
    EXPECT_TRUE(bp.predict(0, 0x100));
}

TEST(Gshare, LearnsAlwaysNotTaken)
{
    GsharePredictor bp(10, 0, 1);
    for (int i = 0; i < 10; ++i)
        bp.update(0, 0x200, false);
    EXPECT_FALSE(bp.predict(0, 0x200));
}

TEST(Gshare, AccuracyOnBiasedStream)
{
    GsharePredictor bp(13, 4, 1);
    Random rng(5);
    uint64_t wrong = 0;
    const int n = 20000;
    // 16 biased static branches visited round robin.
    bool bias[16];
    for (int b = 0; b < 16; ++b)
        bias[b] = (b % 3) != 0;
    for (int i = 0; i < n; ++i) {
        int b = i % 16;
        bool taken = rng.chance(bias[b] ? 0.97 : 0.03);
        wrong += bp.update(0, 0x1000 + 4 * b, taken);
    }
    EXPECT_LT(static_cast<double>(wrong) / n, 0.08);
    EXPECT_NEAR(bp.mispredictRate(),
                static_cast<double>(wrong) / n, 1e-9);
}

TEST(Gshare, ThreadsIsolated)
{
    GsharePredictor bp(12, 4, 2);
    for (int i = 0; i < 50; ++i) {
        bp.update(0, 0x100, true);
        bp.update(1, 0x100, false);
    }
    EXPECT_TRUE(bp.predict(0, 0x100));
    EXPECT_FALSE(bp.predict(1, 0x100));
}

TEST(Gshare, HistoryCheckpointRestore)
{
    GsharePredictor bp(12, 8, 1);
    bp.update(0, 0x10, true);
    bp.update(0, 0x14, false);
    uint64_t h = bp.history(0);
    bp.update(0, 0x18, true);
    EXPECT_NE(bp.history(0), h);
    bp.setHistory(0, h);
    EXPECT_EQ(bp.history(0), h);
}

TEST(Gshare, ResetClearsState)
{
    GsharePredictor bp(10, 2, 1);
    for (int i = 0; i < 20; ++i)
        bp.update(0, 0x40, false);
    bp.reset();
    EXPECT_EQ(bp.lookups.value(), 0.0);
    // Counters back to weakly taken.
    EXPECT_TRUE(bp.predict(0, 0x40));
}

TEST(Gshare, RandomBranchesNearChance)
{
    GsharePredictor bp(13, 4, 1);
    Random rng(11);
    uint64_t wrong = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        wrong += bp.update(0, 0x2000, rng.chance(0.5));
    double rate = static_cast<double>(wrong) / n;
    EXPECT_GT(rate, 0.4);
    EXPECT_LT(rate, 0.6);
}
