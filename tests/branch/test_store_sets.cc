/** @file Tests for the store-sets memory dependence predictor. */

#include <gtest/gtest.h>

#include "branch/store_sets.hh"

using namespace shelf;

TEST(StoreSets, UntrainedLoadsUnconstrained)
{
    StoreSets ss;
    EXPECT_EQ(ss.loadDispatched(0x100), StoreSets::kNoStore);
    EXPECT_EQ(ss.storeDispatched(0x200, 1), StoreSets::kNoStore);
}

TEST(StoreSets, ViolationCreatesDependence)
{
    StoreSets ss;
    ss.recordViolation(0x100, 0x200); // load pc, store pc
    EXPECT_EQ(ss.violations.value(), 1.0);
    // The store registers in the LFST; the load now waits on it.
    ss.storeDispatched(0x200, 42);
    EXPECT_EQ(ss.loadDispatched(0x100), 42u);
}

TEST(StoreSets, StoreIssueClearsLfst)
{
    StoreSets ss;
    ss.recordViolation(0x100, 0x200);
    ss.storeDispatched(0x200, 42);
    ss.storeIssued(0x200, 42);
    EXPECT_EQ(ss.loadDispatched(0x100), StoreSets::kNoStore);
}

TEST(StoreSets, StoreStoreOrderingWithinSet)
{
    StoreSets ss;
    ss.recordViolation(0x100, 0x200);
    ss.recordViolation(0x100, 0x300); // merges 0x300 into the set
    EXPECT_EQ(ss.storeDispatched(0x200, 10), StoreSets::kNoStore);
    // The second store in the same set must wait for the first.
    EXPECT_EQ(ss.storeDispatched(0x300, 11), 10u);
}

TEST(StoreSets, StaleStoreIssueDoesNotClearNewer)
{
    StoreSets ss;
    ss.recordViolation(0x100, 0x200);
    ss.storeDispatched(0x200, 10);
    ss.storeDispatched(0x200, 20); // newer instance replaces
    ss.storeIssued(0x200, 10);     // stale: must not clear 20
    EXPECT_EQ(ss.loadDispatched(0x100), 20u);
}

TEST(StoreSets, SquashDropsYoungStores)
{
    StoreSets ss;
    ss.recordViolation(0x100, 0x200);
    ss.storeDispatched(0x200, 50);
    ss.squash(49);
    EXPECT_EQ(ss.loadDispatched(0x100), StoreSets::kNoStore);
}

TEST(StoreSets, SquashKeepsElderStores)
{
    StoreSets ss;
    ss.recordViolation(0x100, 0x200);
    ss.storeDispatched(0x200, 50);
    ss.squash(50);
    EXPECT_EQ(ss.loadDispatched(0x100), 50u);
}

TEST(StoreSets, ResetForgetsEverything)
{
    StoreSets ss;
    ss.recordViolation(0x100, 0x200);
    ss.storeDispatched(0x200, 1);
    ss.reset();
    EXPECT_EQ(ss.loadDispatched(0x100), StoreSets::kNoStore);
    EXPECT_EQ(ss.violations.value(), 0.0);
}
