/**
 * @file
 * Tests for the McPAT-lite energy/area model: monotonicity in
 * structure sizes, Table II area ordering, and EDP arithmetic.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"

using namespace shelf;

namespace
{

EventCounts
someEvents()
{
    EventCounts ev;
    ev.fetchedInsts = 10000;
    ev.decodedInsts = 9000;
    ev.renameOps = 9000;
    ev.iqWrites = 8000;
    ev.iqWakeupCompares = 200000;
    ev.iqIssues = 8000;
    ev.robWrites = 8000;
    ev.robRetires = 8000;
    ev.prfReads = 16000;
    ev.prfWrites = 8000;
    ev.fuOps = 8000;
    return ev;
}

} // namespace

TEST(EnergyModel, AreaOrderingMatchesTableII)
{
    HierarchyParams mem;
    EnergyModel base64(baseCore64(4), mem);
    EnergyModel base128(baseCore128(4), mem);
    EnergyModel shelf(shelfCore(4, false), mem);

    double a64 = base64.coreArea(false);
    double a128 = base128.coreArea(false);
    double ash = shelf.coreArea(false);

    // Base128 costs much more area than the shelf (Table II).
    EXPECT_GT(a128, ash);
    EXPECT_GT(ash, a64);

    double shelf_increase = (ash - a64) / a64;
    double base128_increase = (a128 - a64) / a64;
    // Paper: +3.1% (shelf) vs +9.7% (Base128), excluding L1.
    EXPECT_NEAR(shelf_increase, 0.031, 0.02);
    EXPECT_NEAR(base128_increase, 0.097, 0.04);

    // Including L1 shrinks both ratios (Table II row 2).
    double shelf_l1 = (shelf.coreArea(true) - base64.coreArea(true)) /
        base64.coreArea(true);
    EXPECT_LT(shelf_l1, shelf_increase);
}

TEST(EnergyModel, EnergyMonotonicInEvents)
{
    HierarchyParams mem;
    EnergyModel m(baseCore64(4), mem);
    EventCounts ev = someEvents();
    auto r1 = m.evaluate(ev, 1000, 1000, 10000, 8000);
    ev.iqWakeupCompares *= 2;
    auto r2 = m.evaluate(ev, 1000, 1000, 10000, 8000);
    EXPECT_GT(r2.dynamicPJ, r1.dynamicPJ);
}

TEST(EnergyModel, LeakageScalesWithTime)
{
    HierarchyParams mem;
    EnergyModel m(baseCore64(4), mem);
    EventCounts ev = someEvents();
    auto r1 = m.evaluate(ev, 0, 0, 10000, 8000);
    auto r2 = m.evaluate(ev, 0, 0, 20000, 8000);
    EXPECT_NEAR(r2.leakagePJ, 2 * r1.leakagePJ, 1e-6);
}

TEST(EnergyModel, EdpArithmetic)
{
    HierarchyParams mem;
    EnergyModel m(baseCore64(4), mem);
    EventCounts ev = someEvents();
    auto r = m.evaluate(ev, 0, 0, 10000, 5000);
    EXPECT_NEAR(r.energyPerInstPJ, r.totalPJ / 5000, 1e-9);
    EXPECT_NEAR(r.cyclesPerInst, 2.0, 1e-9);
    EXPECT_NEAR(r.edp, r.energyPerInstPJ * 2.0, 1e-9);
}

TEST(EnergyModel, BiggerStructuresCostMorePerEvent)
{
    HierarchyParams mem;
    EnergyModel m64(baseCore64(4), mem);
    EnergyModel m128(baseCore128(4), mem);
    EventCounts ev = someEvents();
    auto r64 = m64.evaluate(ev, 0, 0, 10000, 8000);
    auto r128 = m128.evaluate(ev, 0, 0, 10000, 8000);
    // Same event counts, larger structures: more energy.
    EXPECT_GT(r128.dynamicPJ, r64.dynamicPJ);
    EXPECT_GT(r128.leakagePJ, r64.leakagePJ);
}

TEST(EnergyModel, ShelfEventsCheaperThanIqEvents)
{
    HierarchyParams mem;
    EnergyModel m(shelfCore(4, false), mem);
    EventCounts shelf_heavy;
    shelf_heavy.shelfWrites = 10000;
    shelf_heavy.shelfIssues = 10000;
    EventCounts iq_heavy;
    iq_heavy.iqWrites = 10000;
    iq_heavy.iqIssues = 10000;
    iq_heavy.iqWakeupCompares = 10000 * 32;
    auto rs = m.evaluate(shelf_heavy, 0, 0, 1000, 1000);
    auto ri = m.evaluate(iq_heavy, 0, 0, 1000, 1000);
    EXPECT_LT(rs.dynamicPJ, ri.dynamicPJ);
}

TEST(EnergyModel, BreakdownSumsToArea)
{
    HierarchyParams mem;
    EnergyModel m(shelfCore(4, true), mem);
    double sum = 0;
    for (const auto &[name, a] : m.areaBreakdown())
        sum += a;
    EXPECT_NEAR(sum, m.coreArea(false), 1e-9);
}
