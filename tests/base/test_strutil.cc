/** @file Unit tests for string helpers and the table printer. */

#include <gtest/gtest.h>

#include <clocale>

#include "base/strutil.hh"
#include "base/table.hh"

using namespace shelf;

TEST(StrUtil, CsprintfFormats)
{
    EXPECT_EQ(csprintf("plain"), "plain");
    EXPECT_EQ(csprintf("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(csprintf("%.2f", 3.14159), "3.14");
}

TEST(StrUtil, CsprintfLongOutput)
{
    std::string big(500, 'a');
    std::string out = csprintf("%s!", big.c_str());
    EXPECT_EQ(out.size(), 501u);
    EXPECT_EQ(out.back(), '!');
}

TEST(StrUtil, SplitAndJoin)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(join(parts, "+"), "a+b++c");
    EXPECT_EQ(join({}, "+"), "");
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({ "name", "value" });
    t.addRow({ "x", "1" });
    t.addRow({ "longer-name", "2.50" });
    std::string out = t.render();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // Header separator rule present.
    EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchDies)
{
    TextTable t({ "a", "b" });
    EXPECT_DEATH(t.addRow({ "only-one" }), "width");
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::pct(0.115, 1), "11.5%");
}

TEST(Parse, U64AcceptsWholeNumbers)
{
    uint64_t v = 99;
    EXPECT_TRUE(tryParseU64("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(tryParseU64("18446744073709551615", v));
    EXPECT_EQ(v, UINT64_MAX);
}

TEST(Parse, U64RejectsGarbage)
{
    uint64_t v;
    EXPECT_FALSE(tryParseU64("", v));
    EXPECT_FALSE(tryParseU64("-1", v));
    EXPECT_FALSE(tryParseU64("+1", v));
    EXPECT_FALSE(tryParseU64(" 1", v));
    EXPECT_FALSE(tryParseU64("1 ", v));
    EXPECT_FALSE(tryParseU64("1O", v));      // letter O typo
    EXPECT_FALSE(tryParseU64("12x", v));
    EXPECT_FALSE(tryParseU64("0x10", v));
    // Overflow is an error, not a silent clamp.
    EXPECT_FALSE(tryParseU64("18446744073709551616", v));
}

TEST(Parse, I64RoundTripsNegatives)
{
    int64_t v = 0;
    EXPECT_TRUE(tryParseI64("-42", v));
    EXPECT_EQ(v, -42);
    EXPECT_FALSE(tryParseI64("--1", v));
    EXPECT_FALSE(tryParseI64("4 2", v));
    EXPECT_FALSE(tryParseI64("", v));
}

TEST(Parse, DoubleRejectsNonFiniteAndPartial)
{
    double v = 0;
    EXPECT_TRUE(tryParseDouble("2.5", v));
    EXPECT_DOUBLE_EQ(v, 2.5);
    EXPECT_TRUE(tryParseDouble("1e-3", v));
    EXPECT_FALSE(tryParseDouble("nan", v));
    EXPECT_FALSE(tryParseDouble("inf", v));
    EXPECT_FALSE(tryParseDouble("-inf", v));
    EXPECT_FALSE(tryParseDouble("0.5x", v));
    EXPECT_FALSE(tryParseDouble("", v));
    EXPECT_FALSE(tryParseDouble(" 1.0", v));
}

TEST(Parse, DoubleIsLocaleIndependent)
{
    // tryParseDouble must read "2.5" as 2.5 even when the process
    // locale says the decimal point is ','; skip when the host has
    // no comma-decimal locale to prove it against.
    const char *prev = setlocale(LC_NUMERIC, nullptr);
    std::string saved = prev ? prev : "C";
    bool installed = false;
    for (const char *name :
         { "de_DE.UTF-8", "fr_FR.UTF-8", "de_DE", "fr_FR" }) {
        if (setlocale(LC_NUMERIC, name)) {
            installed = true;
            break;
        }
    }
    if (!installed || localeconv()->decimal_point[0] != ',') {
        setlocale(LC_NUMERIC, saved.c_str());
        GTEST_SKIP() << "no comma-decimal locale installed";
    }
    double v = 0;
    EXPECT_TRUE(tryParseDouble("2.5", v));
    EXPECT_DOUBLE_EQ(v, 2.5);
    EXPECT_FALSE(tryParseDouble("2,5", v));
    setlocale(LC_NUMERIC, saved.c_str());
}

TEST(Fnv1a64, MatchesReferenceVectors)
{
    // Published FNV-1a test vectors; stability matters because the
    // hash tags worker log lines across runs and machines.
    EXPECT_EQ(fnv1a64(""), 14695981039346656037ULL);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
    EXPECT_NE(fnv1a64("abc"), fnv1a64("acb"));
}
