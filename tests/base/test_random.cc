/** @file Unit and property tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "base/random.hh"

using namespace shelf;

TEST(Random, DeterministicAcrossInstances)
{
    Random a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Random, BelowRespectsBound)
{
    Random r(7);
    for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Random, RangeInclusive)
{
    Random r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, RealInUnitInterval)
{
    Random r(11);
    for (int i = 0; i < 1000; ++i) {
        double v = r.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Random, ChanceExtremes)
{
    Random r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

class RandomChanceTest : public ::testing::TestWithParam<double>
{};

TEST_P(RandomChanceTest, EmpiricalRateMatches)
{
    double p = GetParam();
    Random r(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(p);
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, RandomChanceTest,
                         ::testing::Values(0.05, 0.25, 0.5, 0.75,
                                           0.96));

TEST(Random, GeometricMeanMatches)
{
    Random r(19);
    double p = 0.3;
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(p));
    // E[failures before success] = (1-p)/p = 2.333
    EXPECT_NEAR(sum / n, (1 - p) / p, 0.1);
}

TEST(Random, WeightedRespectsWeights)
{
    Random r(23);
    std::vector<double> w = { 1.0, 0.0, 3.0 };
    int counts[3] = {};
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[r.weighted(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Random, ReseedReproduces)
{
    Random r(31);
    uint64_t first = r.next();
    r.next();
    r.seed(31);
    EXPECT_EQ(r.next(), first);
}
