/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include "base/stats.hh"

using namespace shelf::stats;

TEST(Scalar, IncrementAndAssign)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s = 10;
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Average, Mean)
{
    Average a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(2);
    a.sample(4);
    a.sample(6);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_EQ(a.samples(), 3u);
    a.reset();
    EXPECT_EQ(a.samples(), 0u);
}

TEST(Histogram, BasicBuckets)
{
    Histogram h(10);
    h.sample(3);
    h.sample(3);
    h.sample(7, 2.0);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 4.0);
    EXPECT_DOUBLE_EQ(h.bucket(3), 2.0);
    EXPECT_DOUBLE_EQ(h.bucket(7), 2.0);
    EXPECT_DOUBLE_EQ(h.bucket(5), 0.0);
}

TEST(Histogram, OverflowBucket)
{
    Histogram h(4);
    h.sample(100);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 1.0);
    EXPECT_DOUBLE_EQ(h.cdf(4), 0.0);
    EXPECT_DOUBLE_EQ(h.cdf(1000), 1.0);
}

TEST(Histogram, CdfMonotonic)
{
    Histogram h(20);
    for (uint64_t v = 1; v <= 20; ++v)
        h.sample(v, static_cast<double>(v));
    double prev = 0;
    for (uint64_t v = 0; v <= 20; ++v) {
        double c = h.cdf(v);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_DOUBLE_EQ(h.cdf(20), 1.0);
}

TEST(Histogram, Quantile)
{
    Histogram h(10);
    h.sample(2, 1.0);
    h.sample(5, 1.0);
    h.sample(9, 2.0);
    EXPECT_EQ(h.quantile(0.25), 2u);
    EXPECT_EQ(h.quantile(0.5), 5u);
    EXPECT_EQ(h.quantile(0.99), 9u);
}

TEST(Histogram, WeightedMean)
{
    Histogram h(10);
    h.sample(2, 3.0);
    h.sample(8, 1.0);
    EXPECT_DOUBLE_EQ(h.mean(), (2 * 3.0 + 8 * 1.0) / 4.0);
}

TEST(Group, DumpFormatsEntries)
{
    Scalar s;
    s = 42;
    Average a;
    a.sample(3);
    Group g("core");
    g.addScalar("count", &s, "a counter");
    g.addAverage("occ", &a);
    std::string out = g.dump();
    EXPECT_NE(out.find("core.count 42"), std::string::npos);
    EXPECT_NE(out.find("a counter"), std::string::npos);
    EXPECT_NE(out.find("core.occ 3"), std::string::npos);
}
