/** @file Unit tests for the JSON writer. */

#include <gtest/gtest.h>

#include "base/json.hh"

using namespace shelf;

TEST(Json, EmptyObject)
{
    JsonWriter w;
    w.beginObject().endObject();
    EXPECT_EQ(w.str(), "{}");
}

TEST(Json, FieldsCommaSeparated)
{
    JsonWriter w;
    w.beginObject()
        .field("a", 1)
        .field("b", 2.5)
        .field("c", "x")
        .field("d", true)
        .endObject();
    EXPECT_EQ(w.str(), "{\"a\":1,\"b\":2.5,\"c\":\"x\",\"d\":true}");
}

TEST(Json, NestedObjectsAndArrays)
{
    JsonWriter w;
    w.beginObject();
    w.beginArray("xs");
    w.value(1.0);
    w.value(2.0);
    w.endArray();
    w.beginObject("o");
    w.field("k", "v");
    w.endObject();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"xs\":[1,2],\"o\":{\"k\":\"v\"}}");
}

TEST(Json, ArrayOfObjects)
{
    JsonWriter w;
    w.beginArray();
    w.beginObject().field("i", 0).endObject();
    w.beginObject().field("i", 1).endObject();
    w.endArray();
    EXPECT_EQ(w.str(), "[{\"i\":0},{\"i\":1}]");
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, NonFiniteBecomesNull)
{
    JsonWriter w;
    w.beginObject().field("x", 0.0 / 0.0).endObject();
    EXPECT_EQ(w.str(), "{\"x\":null}");
}

TEST(Json, UnbalancedScopesDie)
{
    JsonWriter w;
    EXPECT_DEATH(w.endObject(), "without open scope");
}

TEST(Json, LargeIntegersExact)
{
    JsonWriter w;
    w.beginObject()
        .field("n", static_cast<uint64_t>(1234567890123ULL))
        .endObject();
    EXPECT_EQ(w.str(), "{\"n\":1234567890123}");
}
