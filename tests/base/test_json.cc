/** @file Unit tests for the JSON writer. */

#include <gtest/gtest.h>

#include <clocale>
#include <string>

#include "base/json.hh"

using namespace shelf;

TEST(Json, EmptyObject)
{
    JsonWriter w;
    w.beginObject().endObject();
    EXPECT_EQ(w.str(), "{}");
}

TEST(Json, FieldsCommaSeparated)
{
    JsonWriter w;
    w.beginObject()
        .field("a", 1)
        .field("b", 2.5)
        .field("c", "x")
        .field("d", true)
        .endObject();
    EXPECT_EQ(w.str(), "{\"a\":1,\"b\":2.5,\"c\":\"x\",\"d\":true}");
}

TEST(Json, NestedObjectsAndArrays)
{
    JsonWriter w;
    w.beginObject();
    w.beginArray("xs");
    w.value(1.0);
    w.value(2.0);
    w.endArray();
    w.beginObject("o");
    w.field("k", "v");
    w.endObject();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"xs\":[1,2],\"o\":{\"k\":\"v\"}}");
}

TEST(Json, ArrayOfObjects)
{
    JsonWriter w;
    w.beginArray();
    w.beginObject().field("i", 0).endObject();
    w.beginObject().field("i", 1).endObject();
    w.endArray();
    EXPECT_EQ(w.str(), "[{\"i\":0},{\"i\":1}]");
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, NonFiniteBecomesNull)
{
    JsonWriter w;
    w.beginObject().field("x", 0.0 / 0.0).endObject();
    EXPECT_EQ(w.str(), "{\"x\":null}");
}

TEST(Json, UnbalancedScopesDie)
{
    JsonWriter w;
    EXPECT_DEATH(w.endObject(), "without open scope");
}

TEST(Json, LargeIntegersExact)
{
    JsonWriter w;
    w.beginObject()
        .field("n", static_cast<uint64_t>(1234567890123ULL))
        .endObject();
    EXPECT_EQ(w.str(), "{\"n\":1234567890123}");
}

TEST(JsonParse, ScalarsAndNesting)
{
    JsonValue doc = parseJson(
        "{\"a\":1.5,\"b\":\"hi\",\"c\":[1,2,3],"
        "\"d\":{\"e\":true,\"f\":null}}");
    ASSERT_TRUE(doc.isObject());
    EXPECT_DOUBLE_EQ(doc.find("a")->asDouble(), 1.5);
    EXPECT_EQ(doc.find("b")->raw, "hi");
    ASSERT_TRUE(doc.find("c")->isArray());
    ASSERT_EQ(doc.find("c")->items.size(), 3u);
    EXPECT_EQ(doc.find("c")->items[1].asU64(), 2u);
    const JsonValue *d = doc.find("d");
    ASSERT_TRUE(d && d->isObject());
    EXPECT_TRUE(d->find("e")->isBool());
    EXPECT_TRUE(d->find("e")->boolean);
    EXPECT_TRUE(d->find("f")->isNull());
}

TEST(JsonParse, WriterOutputRoundTrips)
{
    JsonWriter w(JsonWriter::kFullPrecision);
    w.beginObject();
    w.field("pi", 3.141592653589793);
    w.field("s", "quote \" backslash \\ newline \n");
    w.field("n", static_cast<uint64_t>(1234567890123ULL));
    w.endObject();
    JsonValue doc = parseJson(w.str());
    EXPECT_DOUBLE_EQ(doc.find("pi")->asDouble(),
                     3.141592653589793);
    EXPECT_EQ(doc.find("s")->raw,
              "quote \" backslash \\ newline \n");
    EXPECT_EQ(doc.find("n")->asU64(), 1234567890123ULL);
}

TEST(JsonParse, MalformedInputsAreErrorsNotCrashes)
{
    JsonValue doc;
    std::string err;
    EXPECT_FALSE(tryParseJson("", doc, &err));
    EXPECT_NE(err.find("unexpected end"), std::string::npos);
    EXPECT_FALSE(tryParseJson("{\"a\":1", doc, &err));
    EXPECT_FALSE(tryParseJson("{\"a\" 1}", doc, &err));
    EXPECT_FALSE(tryParseJson("[1,2,]", doc, &err));
    EXPECT_FALSE(tryParseJson("{\"a\":1} junk", doc, &err));
    EXPECT_FALSE(tryParseJson("{\"a\":tru}", doc, &err));
    EXPECT_FALSE(tryParseJson("\"unterminated", doc, &err));
    EXPECT_FALSE(tryParseJson("01", doc, &err));
}

TEST(JsonParse, DepthLimitStopsRunaways)
{
    std::string deep(100, '[');
    deep += std::string(100, ']');
    JsonValue doc;
    std::string err;
    EXPECT_FALSE(tryParseJson(deep, doc, &err));
    EXPECT_NE(err.find("deep"), std::string::npos);
}

TEST(JsonParse, RawFieldEmbedsVerbatim)
{
    JsonWriter w;
    w.beginObject();
    w.rawField("inner", "{\"x\":1}");
    w.endObject();
    EXPECT_EQ(w.str(), "{\"inner\":{\"x\":1}}");
    JsonValue doc = parseJson(w.str());
    EXPECT_EQ(doc.find("inner")->find("x")->asU64(), 1u);
}

TEST(JsonParse, FullPrecisionDoublesSurviveRoundTrip)
{
    // 17 significant digits reconstruct any double bit-exactly;
    // the journal and worker protocol rely on this.
    double vals[] = { 1.0 / 3.0, 0.1, 2.5e-300, 1.7976931348623157e308 };
    for (double v : vals) {
        JsonWriter w(JsonWriter::kFullPrecision);
        w.beginObject().field("v", v).endObject();
        JsonValue doc = parseJson(w.str());
        EXPECT_EQ(doc.find("v")->asDouble(), v) << w.str();
    }
}

namespace
{

/**
 * Install a comma-decimal locale for one test, restoring the
 * previous LC_NUMERIC on scope exit. ok() is false when the host
 * has no such locale installed (the test then skips: the point is
 * to prove number I/O ignores the locale, which needs a locale
 * that would break locale-sensitive code).
 */
class CommaLocale
{
  public:
    CommaLocale()
    {
        const char *prev = setlocale(LC_NUMERIC, nullptr);
        saved = prev ? prev : "C";
        for (const char *name :
             { "de_DE.UTF-8", "fr_FR.UTF-8", "de_DE", "fr_FR" }) {
            if (setlocale(LC_NUMERIC, name)) {
                installed = true;
                break;
            }
        }
    }

    ~CommaLocale() { setlocale(LC_NUMERIC, saved.c_str()); }

    bool ok() const
    {
        return installed &&
               localeconv()->decimal_point[0] == ',';
    }

  private:
    std::string saved;
    bool installed = false;
};

} // namespace

TEST(JsonLocale, WriterEmitsDotUnderCommaLocale)
{
    CommaLocale loc;
    if (!loc.ok())
        GTEST_SKIP() << "no comma-decimal locale installed";
    JsonWriter w;
    w.beginObject().field("v", 2.5).endObject();
    EXPECT_EQ(w.str(), "{\"v\":2.5}");
}

TEST(JsonLocale, ParserReadsDotUnderCommaLocale)
{
    CommaLocale loc;
    if (!loc.ok())
        GTEST_SKIP() << "no comma-decimal locale installed";
    JsonValue doc = parseJson("{\"v\":2.5}");
    EXPECT_DOUBLE_EQ(doc.find("v")->asDouble(), 2.5);
    // Comma-decimal numbers are NOT valid JSON and must not
    // suddenly become acceptable under the matching locale.
    JsonValue bad;
    EXPECT_FALSE(tryParseJson("{\"v\":2,5}", bad, nullptr));
}

TEST(JsonLocale, FullPrecisionRoundTripUnderCommaLocale)
{
    CommaLocale loc;
    if (!loc.ok())
        GTEST_SKIP() << "no comma-decimal locale installed";
    double vals[] = { 1.0 / 3.0, 0.1, 2.5e-300,
                      1.7976931348623157e308 };
    for (double v : vals) {
        JsonWriter w(JsonWriter::kFullPrecision);
        w.beginObject().field("v", v).endObject();
        JsonValue doc = parseJson(w.str());
        EXPECT_EQ(doc.find("v")->asDouble(), v) << w.str();
    }
}
