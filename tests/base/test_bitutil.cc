/** @file Unit tests for base/bitutil.hh. */

#include <gtest/gtest.h>

#include "base/bitutil.hh"

using namespace shelf;

TEST(BitUtil, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ULL << 40));
    EXPECT_FALSE(isPowerOf2((1ULL << 40) + 1));
}

TEST(BitUtil, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(4), 2u);
    EXPECT_EQ(log2Floor(1023), 9u);
    EXPECT_EQ(log2Floor(1024), 10u);
}

TEST(BitUtil, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(4), 2u);
    EXPECT_EQ(log2Ceil(5), 3u);
    EXPECT_EQ(log2Ceil(1024), 10u);
    EXPECT_EQ(log2Ceil(1025), 11u);
}

TEST(BitUtil, Mask)
{
    EXPECT_EQ(mask(0), 0ULL);
    EXPECT_EQ(mask(1), 1ULL);
    EXPECT_EQ(mask(8), 0xFFULL);
    EXPECT_EQ(mask(64), ~0ULL);
}

TEST(BitUtil, Bits)
{
    EXPECT_EQ(bits(0xABCD, 4, 8), 0xBCULL);
    EXPECT_EQ(bits(0xFF, 0, 4), 0xFULL);
    EXPECT_EQ(bits(0xFF00, 8, 8), 0xFFULL);
}

TEST(BitUtil, Rounding)
{
    EXPECT_EQ(roundUp(13, 8), 16ULL);
    EXPECT_EQ(roundUp(16, 8), 16ULL);
    EXPECT_EQ(roundDown(13, 8), 8ULL);
    EXPECT_EQ(roundDown(16, 8), 16ULL);
}

TEST(BitUtil, PopCount)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(0xFF), 8u);
    EXPECT_EQ(popCount(0x8000000000000001ULL), 2u);
}
