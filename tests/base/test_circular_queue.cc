/** @file Unit tests for the virtual-index circular queue. */

#include <gtest/gtest.h>

#include "base/circular_queue.hh"

using namespace shelf;

TEST(CircularQueue, PushPopBasics)
{
    CircularQueue<int> q(4);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.full());
    EXPECT_EQ(q.capacity(), 4u);

    EXPECT_EQ(q.push(10), 0u);
    EXPECT_EQ(q.push(11), 1u);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.front(), 10);
    EXPECT_EQ(q.back(), 11);

    q.popFront();
    EXPECT_EQ(q.front(), 11);
    EXPECT_EQ(q.headIndex(), 1u);
}

TEST(CircularQueue, VirtualIndicesMonotonicAcrossWrap)
{
    CircularQueue<int> q(2);
    q.push(1);
    q.push(2);
    q.popFront();
    EXPECT_EQ(q.push(3), 2u); // index keeps growing past capacity
    q.popFront();
    EXPECT_EQ(q.push(4), 3u);
    EXPECT_EQ(q.at(2), 3);
    EXPECT_EQ(q.at(3), 4);
}

TEST(CircularQueue, PopBackReusesIndex)
{
    CircularQueue<int> q(4);
    q.push(1);
    CircularQueue<int>::Index idx = q.push(2);
    q.popBack();
    EXPECT_EQ(q.push(5), idx); // rollback makes the index available
    EXPECT_EQ(q.at(idx), 5);
}

TEST(CircularQueue, ContainsRange)
{
    CircularQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.popFront();
    EXPECT_FALSE(q.contains(0));
    EXPECT_TRUE(q.contains(1));
    EXPECT_FALSE(q.contains(2));
}

TEST(CircularQueue, FullBlocksPush)
{
    CircularQueue<int> q(2);
    q.push(1);
    q.push(2);
    EXPECT_TRUE(q.full());
    EXPECT_DEATH(q.push(3), "full");
}

TEST(CircularQueue, EmptyPopsDie)
{
    CircularQueue<int> q(2);
    EXPECT_DEATH(q.popFront(), "empty");
    EXPECT_DEATH(q.popBack(), "empty");
}

TEST(CircularQueue, ClearResetsIndices)
{
    CircularQueue<int> q(2);
    q.push(1);
    q.push(2);
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.headIndex(), 0u);
    EXPECT_EQ(q.push(9), 0u);
}

TEST(CircularQueue, LongWrapStress)
{
    CircularQueue<uint64_t> q(7);
    uint64_t pushed = 0, popped = 0;
    for (int round = 0; round < 1000; ++round) {
        while (!q.full())
            q.push(pushed++);
        while (q.size() > 2) {
            EXPECT_EQ(q.front(), popped);
            q.popFront();
            ++popped;
        }
    }
    EXPECT_EQ(q.headIndex(), popped);
    EXPECT_EQ(q.tailIndex(), pushed);
}
